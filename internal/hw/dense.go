package hw

import (
	"sort"

	"repro/internal/app"
	"repro/internal/sim"
)

// UsageRow is per-component energy in joules attributed to one app,
// stored densely (index Component-1). It replaces the map[Component]
// representation on the metering hot path: a row is a fixed-size value,
// so accruing into one allocates nothing.
type UsageRow [numComponents]float64

// J reports the energy recorded for component c.
func (r *UsageRow) J(c Component) float64 {
	if c < CPU || c > Audio {
		return 0
	}
	return r[c-1]
}

// Add accumulates j joules for component c. Components outside the
// known range are dropped, mirroring what a map write to an invalid key
// would have tracked (nothing the Total below ever read).
func (r *UsageRow) Add(c Component, j float64) {
	if c < CPU || c > Audio {
		return
	}
	r[c-1] += j
}

// AddRow accumulates other into r in fixed component order.
func (r *UsageRow) AddRow(other *UsageRow) {
	for i := range other {
		r[i] += other[i]
	}
}

// Total sums the row across components. Like Usage.Total, summation runs
// in fixed component order, so results are bit-deterministic; the zero
// entries a map would have omitted add exactly 0.0 and leave every
// partial sum unchanged.
func (r *UsageRow) Total() float64 {
	var t float64
	for i := range r {
		t += r[i]
	}
	return t
}

// Usage converts the row to the map representation used by cold-path
// APIs, keeping only non-zero components (the keys a map-built row would
// have held).
func (r *UsageRow) Usage() Usage {
	u := make(Usage)
	for i, j := range r {
		if j != 0 {
			u[Component(i+1)] = j
		}
	}
	return u
}

// UsageTable is a dense UID-indexed table of usage rows: the hot-path
// replacement for map[app.UID]Usage. Rows live in one contiguous slice
// indexed by uid-base (the small-int slot registry of internal/app maps
// installed apps onto exactly this kind of dense range), and the active
// UID set is maintained as a sorted slice, so per-interval consumers get
// sorted deterministic iteration without re-collecting and re-sorting
// keys. Reset keeps the backing storage, so a reused table allocates
// nothing in steady state.
type UsageTable struct {
	base app.UID
	rows []UsageRow
	live []bool
	uids []app.UID // sorted active UIDs
}

// NewUsageTable returns an empty table. The slot range starts at
// app.FirstAppUID (the common case); rows for smaller UIDs shift the
// base down on first touch.
func NewUsageTable() *UsageTable {
	return &UsageTable{base: app.FirstAppUID}
}

// Reset deactivates every row, keeping capacity for reuse.
func (t *UsageTable) Reset() {
	for _, uid := range t.uids {
		i := int(uid - t.base)
		t.rows[i] = UsageRow{}
		t.live[i] = false
	}
	t.uids = t.uids[:0]
}

// slot grows the dense range to cover uid and returns its index.
func (t *UsageTable) slot(uid app.UID) int {
	if uid < t.base {
		shift := int(t.base - uid)
		rows := make([]UsageRow, shift+len(t.rows))
		copy(rows[shift:], t.rows)
		live := make([]bool, shift+len(t.live))
		copy(live[shift:], t.live)
		t.rows, t.live, t.base = rows, live, uid
	}
	i := int(uid - t.base)
	if i >= len(t.rows) {
		if i >= cap(t.rows) {
			rows := make([]UsageRow, i+1, 2*(i+1))
			copy(rows, t.rows)
			live := make([]bool, i+1, 2*(i+1))
			copy(live, t.live)
			t.rows, t.live = rows, live
		} else {
			t.rows = t.rows[:i+1]
			t.live = t.live[:i+1]
		}
	}
	return i
}

// Row returns uid's row, activating it (and inserting uid into the
// sorted active set) on first touch since the last Reset.
func (t *UsageTable) Row(uid app.UID) *UsageRow {
	i := t.slot(uid)
	if !t.live[i] {
		t.live[i] = true
		t.insert(uid)
	}
	return &t.rows[i]
}

// insert adds uid to the sorted active set. Appends dominate: the meter
// walks its live UIDs in ascending order, so insertion is almost always
// at the tail.
func (t *UsageTable) insert(uid app.UID) {
	n := len(t.uids)
	if n == 0 || uid > t.uids[n-1] {
		t.uids = append(t.uids, uid)
		return
	}
	j := sort.Search(n, func(k int) bool { return t.uids[k] >= uid })
	t.uids = append(t.uids, 0)
	copy(t.uids[j+1:], t.uids[j:])
	t.uids[j] = uid
}

// Get returns uid's row, or nil when uid is not active.
func (t *UsageTable) Get(uid app.UID) *UsageRow {
	if t == nil || uid < t.base {
		return nil
	}
	i := int(uid - t.base)
	if i >= len(t.rows) || !t.live[i] {
		return nil
	}
	return &t.rows[i]
}

// UIDs returns the active UIDs in ascending order. The slice is borrowed:
// valid until the next Row or Reset.
func (t *UsageTable) UIDs() []app.UID {
	if t == nil {
		return nil
	}
	return t.uids
}

// Len reports the number of active rows.
func (t *UsageTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.uids)
}

// Each calls fn for every active row in ascending UID order.
func (t *UsageTable) Each(fn func(uid app.UID, row *UsageRow)) {
	if t == nil {
		return
	}
	for _, uid := range t.uids {
		fn(uid, &t.rows[uid-t.base])
	}
}

// TotalJ sums every active row in ascending UID order (each row in fixed
// component order), matching the historical sorted-UID summation exactly.
func (t *UsageTable) TotalJ() float64 {
	var total float64
	if t == nil {
		return total
	}
	for _, uid := range t.uids {
		total += t.rows[uid-t.base].Total()
	}
	return total
}

// Clone returns an independent deep copy.
func (t *UsageTable) Clone() *UsageTable {
	if t == nil {
		return nil
	}
	c := &UsageTable{
		base: t.base,
		rows: append([]UsageRow(nil), t.rows...),
		live: append([]bool(nil), t.live...),
		uids: append([]app.UID(nil), t.uids...),
	}
	return c
}

// Interval is one integrated span of constant power, delivered to sinks.
//
// Borrow contract: the meter reuses ONE backing table for the interval
// it hands to sinks, so the per-app rows (everything reached through
// Row/App/EachApp/UIDs) are valid only until the sink returns. A sink
// that retains interval data past its Accrue call must Clone() first;
// the next flush overwrites the borrowed storage in place. From, To,
// ScreenJ and SystemJ are plain values and safe to copy freely.
type Interval struct {
	From, To sim.Time
	// ScreenJ is display energy over the interval; its attribution is a
	// policy decision made downstream, so the meter reports it raw.
	ScreenJ float64
	// SystemJ is platform base energy (suspend or idle-awake draw).
	SystemJ float64

	// apps holds each app's own hardware energy over the interval (CPU,
	// camera, GPS, WiFi, audio — everything except the screen).
	apps *UsageTable
}

// NewInterval returns an interval with an empty per-app table; tests and
// replayers build intervals with it and fill rows via Row.
func NewInterval(from, to sim.Time) Interval {
	return Interval{From: from, To: to, apps: NewUsageTable()}
}

// Duration reports the interval length.
func (iv Interval) Duration() sim.Duration { return iv.To.Sub(iv.From) }

// Row returns uid's usage row, creating the backing table and the row as
// needed. Mutating a row on a borrowed interval mutates the shared
// storage (that is what the corrupting-sink tests rely on).
func (iv *Interval) Row(uid app.UID) *UsageRow {
	if iv.apps == nil {
		iv.apps = NewUsageTable()
	}
	return iv.apps.Row(uid)
}

// App returns uid's row, or nil when the interval attributes nothing to
// uid. The row is borrowed (see the type comment).
func (iv Interval) App(uid app.UID) *UsageRow { return iv.apps.Get(uid) }

// AppJ reports the total energy the interval attributes to uid.
func (iv Interval) AppJ(uid app.UID) float64 {
	r := iv.apps.Get(uid)
	if r == nil {
		return 0
	}
	return r.Total()
}

// UIDs returns the charged UIDs in ascending order (borrowed slice).
func (iv Interval) UIDs() []app.UID { return iv.apps.UIDs() }

// NumApps reports how many apps the interval charges.
func (iv Interval) NumApps() int { return iv.apps.Len() }

// EachApp calls fn for every charged app in ascending UID order.
func (iv Interval) EachApp(fn func(uid app.UID, row *UsageRow)) { iv.apps.Each(fn) }

// AppsTotalJ sums all per-app energy in ascending UID order.
func (iv Interval) AppsTotalJ() float64 { return iv.apps.TotalJ() }

// Clone returns an interval with an independent per-app table, safe to
// retain past the sink call that delivered the original.
func (iv Interval) Clone() Interval {
	iv.apps = iv.apps.Clone()
	return iv
}

// uidColumns is the meter's per-UID hot state in struct-of-arrays form:
// one column per field instead of a slice of structs, so the accrual
// loop walks each touched field cache-linearly and the instantaneous-
// power sampler reads only the columns it needs. Slots mirror
// internal/app's sequential UID assignment (index uid-base), exactly
// like UsageTable.
type uidColumns struct {
	base app.UID
	// cpuUtil is the utilization currently attributed to the app
	// (non-zero only while attributed: zero util clears the slot).
	cpuUtil []float64
	// tailExp, when non-zero, is the instant the app's WiFi radio tail
	// expires. An app never holds WiFi and has a tail at once.
	tailExp []sim.Time
	// holds[ci] counts nested peripheral holds of component ci+1;
	// holdMask mirrors it as a per-UID bitset (bit ci set while
	// holds[ci] > 0) so "any hold?" and "which?" are one byte load.
	holds    [numComponents][]int32
	holdMask []uint8
	// live marks slots carrying any state.
	live []bool
}

// init pre-sizes every column for capHint slots above base, so the
// first few apps of a device never grow the table.
func (c *uidColumns) init(base app.UID, capHint int) {
	c.base = base
	c.cpuUtil = make([]float64, 0, capHint)
	c.tailExp = make([]sim.Time, 0, capHint)
	for ci := range c.holds {
		c.holds[ci] = make([]int32, 0, capHint)
	}
	c.holdMask = make([]uint8, 0, capHint)
	c.live = make([]bool, 0, capHint)
}

// index returns uid's slot, or -1 when uid is outside the table.
func (c *uidColumns) index(uid app.UID) int {
	i := int(uid - c.base)
	if uid < c.base || i >= len(c.live) {
		return -1
	}
	return i
}

// ensure returns uid's slot, growing (or re-basing, for sub-base UIDs)
// every column in lockstep as needed.
func (c *uidColumns) ensure(uid app.UID) int {
	if uid < c.base {
		shift := int(c.base - uid)
		c.cpuUtil = prepend(c.cpuUtil, shift)
		c.tailExp = prepend(c.tailExp, shift)
		for ci := range c.holds {
			c.holds[ci] = prepend(c.holds[ci], shift)
		}
		c.holdMask = prepend(c.holdMask, shift)
		c.live = prepend(c.live, shift)
		c.base = uid
	}
	i := int(uid - c.base)
	for i >= len(c.live) {
		c.cpuUtil = append(c.cpuUtil, 0)
		c.tailExp = append(c.tailExp, 0)
		for ci := range c.holds {
			c.holds[ci] = append(c.holds[ci], 0)
		}
		c.holdMask = append(c.holdMask, 0)
		c.live = append(c.live, false)
	}
	return i
}

// emptyAt reports whether slot i carries no state and can be released.
func (c *uidColumns) emptyAt(i int) bool {
	return c.cpuUtil[i] == 0 && c.tailExp[i] == 0 && c.holdMask[i] == 0
}

// prepend shifts a column up by n zero slots (the rare sub-base case).
func prepend[T any](col []T, n int) []T {
	grown := make([]T, n+len(col))
	copy(grown[n:], col)
	return grown
}
