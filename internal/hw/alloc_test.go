package hw

import (
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/sim"
)

// Steady-state flushes must not allocate: the interval table, the UID
// registry rows and every scratch buffer are warmed by the first flush
// and reused verbatim afterwards. This is the pin for the dense-table
// rework — a regression here is the old per-flush map churn coming back.
func TestFlushSteadyStateAllocs(t *testing.T) {
	e := sim.NewEngine(1)
	b, err := NewBattery(1e12)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMeter(e.Now, Nexus4(), b)
	if err != nil {
		t.Fatal(err)
	}
	var sunk float64
	m.AddSink(SinkFunc(func(iv Interval) {
		iv.EachApp(func(_ app.UID, u *UsageRow) { sunk += u.Total() })
		sunk += iv.ScreenJ + iv.SystemJ
	}))
	m.SetScreen(true)
	m.SetCPUUtil(10001, 0.5)
	m.SetCPUUtil(10002, 0.25)
	if err := m.Hold(Camera, 10003); err != nil {
		t.Fatal(err)
	}

	// Warm-up: first flush grows the table, registry and scratch space.
	if err := e.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()

	avg := testing.AllocsPerRun(100, func() {
		if err := e.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
		m.Flush()
	})
	if avg != 0 {
		t.Fatalf("steady-state flush allocates %.1f objects, want 0", avg)
	}
	if sunk == 0 {
		t.Fatal("sink saw no energy — the flush loop measured nothing")
	}
}

// The borrow contract: the interval handed to a sink is backed by ONE
// reused table, so a sink that retains it without Clone() watches its
// rows change under the next flush, while a Clone() stays stable.
func TestSinkRetentionRequiresClone(t *testing.T) {
	e := sim.NewEngine(1)
	b, err := NewBattery(1e12)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMeter(e.Now, Nexus4(), b)
	if err != nil {
		t.Fatal(err)
	}
	var borrowed, cloned Interval
	flushes := 0
	m.AddSink(SinkFunc(func(iv Interval) {
		flushes++
		if flushes == 1 {
			borrowed = iv       // violates the contract on purpose
			cloned = iv.Clone() // the sanctioned way to retain
		}
	}))

	m.SetCPUUtil(10001, 0.8)
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	firstJ := cloned.AppJ(10001)
	if firstJ <= 0 {
		t.Fatalf("clone captured no energy (%v)", firstJ)
	}
	if got := borrowed.AppJ(10001); got != firstJ {
		t.Fatalf("borrowed and clone disagree before the next flush: %v vs %v", got, firstJ)
	}

	// A different workload shape makes the next flush rewrite the shared
	// storage the borrowed interval still points at.
	m.SetCPUUtil(10001, 0.1)
	if err := e.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()

	if got := cloned.AppJ(10001); got != firstJ {
		t.Fatalf("clone changed after the next flush: %v vs %v", got, firstJ)
	}
	if got := borrowed.AppJ(10001); got == firstJ {
		t.Fatal("retained borrowed interval kept its values across a flush — the contract test is vacuous")
	}
}
