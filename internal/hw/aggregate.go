package hw

import (
	"fmt"
	"sort"

	"repro/internal/app"
)

// Demand is the hardware load one framework entity (a live activity, a
// running service) places on the device.
type Demand struct {
	CPUUtil float64
	Camera  bool
	GPS     bool
	WiFi    bool
	Audio   bool
}

type demandEntry struct {
	uid    app.UID
	demand Demand
}

// Aggregator sums per-entity hardware demands into per-UID meter state.
// The activity and service managers both contribute entries (keyed by
// their records), so a UID's CPU utilization is the sum of all of its
// live components' demands.
type Aggregator struct {
	meter   *Meter
	entries map[any]demandEntry
	cpu     map[app.UID]float64
}

// NewAggregator returns an aggregator driving the given meter.
func NewAggregator(meter *Meter) (*Aggregator, error) {
	if meter == nil {
		return nil, fmt.Errorf("hw: nil meter")
	}
	return &Aggregator{
		meter:   meter,
		entries: make(map[any]demandEntry),
		cpu:     make(map[app.UID]float64),
	}, nil
}

// Set records (or replaces) the demand contributed by key on behalf of
// uid. A zero demand still counts as an entry; use Clear to remove it.
// Changing the uid for an existing key is rejected: records never migrate
// between apps.
func (g *Aggregator) Set(key any, uid app.UID, d Demand) error {
	if key == nil {
		return fmt.Errorf("hw: nil aggregator key")
	}
	prev, existed := g.entries[key]
	if existed && prev.uid != uid {
		return fmt.Errorf("hw: aggregator key moved from uid %d to %d", prev.uid, uid)
	}
	if d.CPUUtil < 0 {
		d.CPUUtil = 0
	}
	if d.CPUUtil > 1 {
		d.CPUUtil = 1
	}
	g.entries[key] = demandEntry{uid: uid, demand: d}
	g.recomputeCPU(uid)
	if err := g.applyHold(Camera, uid, prev.demand.Camera, d.Camera); err != nil {
		return err
	}
	if err := g.applyHold(GPS, uid, prev.demand.GPS, d.GPS); err != nil {
		return err
	}
	if err := g.applyHold(WiFi, uid, prev.demand.WiFi, d.WiFi); err != nil {
		return err
	}
	return g.applyHold(Audio, uid, prev.demand.Audio, d.Audio)
}

// Clear removes the demand contributed by key. Clearing an absent key is
// a no-op.
func (g *Aggregator) Clear(key any) error {
	prev, ok := g.entries[key]
	if !ok {
		return nil
	}
	delete(g.entries, key)
	g.recomputeCPU(prev.uid)
	if err := g.applyHold(Camera, prev.uid, prev.demand.Camera, false); err != nil {
		return err
	}
	if err := g.applyHold(GPS, prev.uid, prev.demand.GPS, false); err != nil {
		return err
	}
	if err := g.applyHold(WiFi, prev.uid, prev.demand.WiFi, false); err != nil {
		return err
	}
	return g.applyHold(Audio, prev.uid, prev.demand.Audio, false)
}

// recomputeCPU re-sums uid's utilization from scratch. Recomputing (as
// opposed to applying deltas) keeps the total exactly equal to the sum of
// live entries, with no floating-point drift across churn. The values
// are sorted before summation: map iteration order would otherwise
// reorder floating-point additions and break bit-determinism.
func (g *Aggregator) recomputeCPU(uid app.UID) {
	var utils []float64
	for _, e := range g.entries {
		if e.uid == uid {
			utils = append(utils, e.demand.CPUUtil)
		}
	}
	sort.Float64s(utils)
	var total float64
	for _, u := range utils {
		total += u
	}
	if total == 0 {
		delete(g.cpu, uid)
	} else {
		g.cpu[uid] = total
	}
	g.meter.SetCPUUtil(uid, total) // meter clamps to [0,1]
}

func (g *Aggregator) applyHold(c Component, uid app.UID, was, is bool) error {
	switch {
	case !was && is:
		return g.meter.Hold(c, uid)
	case was && !is:
		return g.meter.Release(c, uid)
	}
	return nil
}

// CPUUtil reports the aggregate (unclamped) utilization for uid.
func (g *Aggregator) CPUUtil(uid app.UID) float64 { return g.cpu[uid] }
