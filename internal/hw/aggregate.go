package hw

import (
	"fmt"
	"sort"

	"repro/internal/app"
)

// Demand is the hardware load one framework entity (a live activity, a
// running service) places on the device.
type Demand struct {
	CPUUtil float64
	Camera  bool
	GPS     bool
	WiFi    bool
	Audio   bool
}

type demandEntry struct {
	uid    app.UID
	demand Demand
}

// Aggregator sums per-entity hardware demands into per-UID meter state.
// The activity and service managers both contribute entries (keyed by
// their records), so a UID's CPU utilization is the sum of all of its
// live components' demands.
type Aggregator struct {
	meter   *Meter
	entries map[any]demandEntry
	cpu     map[app.UID]float64
	// order holds the live entry keys in insertion order, so iteration
	// (EachEntry) is deterministic without per-call sorting. Churn is
	// lifecycle-rate, not per-interval, so the linear delete in Clear is
	// cheap relative to the transitions it rides on.
	order []any
}

// NewAggregator returns an aggregator driving the given meter.
func NewAggregator(meter *Meter) (*Aggregator, error) {
	if meter == nil {
		return nil, fmt.Errorf("hw: nil meter")
	}
	return &Aggregator{
		meter:   meter,
		entries: make(map[any]demandEntry),
		cpu:     make(map[app.UID]float64),
	}, nil
}

// Set records (or replaces) the demand contributed by key on behalf of
// uid. A zero demand still counts as an entry; use Clear to remove it.
// Changing the uid for an existing key is rejected: records never migrate
// between apps.
func (g *Aggregator) Set(key any, uid app.UID, d Demand) error {
	if key == nil {
		return fmt.Errorf("hw: nil aggregator key")
	}
	prev, existed := g.entries[key]
	if existed && prev.uid != uid {
		return fmt.Errorf("hw: aggregator key moved from uid %d to %d", prev.uid, uid)
	}
	if d.CPUUtil < 0 {
		d.CPUUtil = 0
	}
	if d.CPUUtil > 1 {
		d.CPUUtil = 1
	}
	// Validate the hold transitions before mutating anything: the only
	// fallible half of a transition is a release without a matching
	// meter hold (Hold on a peripheral never fails), so checking those
	// up front makes Set atomic — a failed call leaves entries, CPU
	// sums and meter holds exactly as they were.
	if err := g.validateHolds(uid, prev.demand, d); err != nil {
		return err
	}
	g.entries[key] = demandEntry{uid: uid, demand: d}
	if !existed {
		g.order = append(g.order, key)
	}
	g.recomputeCPU(uid)
	g.mustApplyHolds(uid, prev.demand, d)
	return nil
}

// Clear removes the demand contributed by key. Clearing an absent key is
// a no-op. Like Set, a failed Clear leaves state unchanged.
func (g *Aggregator) Clear(key any) error {
	prev, ok := g.entries[key]
	if !ok {
		return nil
	}
	if err := g.validateHolds(prev.uid, prev.demand, Demand{}); err != nil {
		return err
	}
	delete(g.entries, key)
	for i, k := range g.order {
		if k == key {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	g.recomputeCPU(prev.uid)
	g.mustApplyHolds(prev.uid, prev.demand, Demand{})
	return nil
}

// holdTransitions enumerates the peripheral flags of a was→is demand
// change in fixed component order.
func holdTransitions(was, is Demand) [4]struct {
	c       Component
	was, is bool
} {
	return [4]struct {
		c       Component
		was, is bool
	}{
		{Camera, was.Camera, is.Camera},
		{GPS, was.GPS, is.GPS},
		{WiFi, was.WiFi, is.WiFi},
		{Audio, was.Audio, is.Audio},
	}
}

// validateHolds confirms every release a was→is transition implies is
// backed by a live meter hold, without touching any state.
func (g *Aggregator) validateHolds(uid app.UID, was, is Demand) error {
	for _, t := range holdTransitions(was, is) {
		if t.was && !t.is && !g.meter.Holding(t.c, uid) {
			return fmt.Errorf("hw: aggregator cannot release %v for uid %d: not held", t.c, uid)
		}
	}
	return nil
}

// mustApplyHolds applies a pre-validated transition; any residual meter
// error indicates aggregator/meter state corruption, which must not be
// half-applied silently.
func (g *Aggregator) mustApplyHolds(uid app.UID, was, is Demand) {
	for _, t := range holdTransitions(was, is) {
		if err := g.applyHold(t.c, uid, t.was, t.is); err != nil {
			panic(fmt.Sprintf("hw: validated hold transition failed: %v", err))
		}
	}
}

// recomputeCPU re-sums uid's utilization from scratch. Recomputing (as
// opposed to applying deltas) keeps the total exactly equal to the sum of
// live entries, with no floating-point drift across churn. The values
// are sorted before summation: map iteration order would otherwise
// reorder floating-point additions and break bit-determinism.
func (g *Aggregator) recomputeCPU(uid app.UID) {
	var utils []float64
	for _, e := range g.entries {
		if e.uid == uid {
			utils = append(utils, e.demand.CPUUtil)
		}
	}
	sort.Float64s(utils)
	var total float64
	for _, u := range utils {
		total += u
	}
	if total == 0 {
		delete(g.cpu, uid)
	} else {
		g.cpu[uid] = total
	}
	g.meter.SetCPUUtil(uid, total) // meter clamps to [0,1]
}

func (g *Aggregator) applyHold(c Component, uid app.UID, was, is bool) error {
	switch {
	case !was && is:
		return g.meter.Hold(c, uid)
	case was && !is:
		return g.meter.Release(c, uid)
	}
	return nil
}

// CPUUtil reports the aggregate (unclamped) utilization for uid.
func (g *Aggregator) CPUUtil(uid app.UID) float64 { return g.cpu[uid] }

// Has reports whether key currently contributes a demand entry. The
// check subsystem uses it to assert that dead components hold nothing.
func (g *Aggregator) Has(key any) bool {
	_, ok := g.entries[key]
	return ok
}

// Entries reports the number of live demand entries.
func (g *Aggregator) Entries() int { return len(g.entries) }

// EachEntry calls fn for every live demand entry in insertion order —
// a deterministic order with no per-call sorting. The observability
// flame-graph collector uses it to split a UID's metered energy across
// the framework entities that demanded it.
func (g *Aggregator) EachEntry(fn func(key any, uid app.UID, d Demand)) {
	for _, k := range g.order {
		e := g.entries[k]
		fn(k, e.uid, e.demand)
	}
}

// Audit recomputes every per-UID CPU sum from the live entries and
// compares it against both the cached totals and the meter's clamped
// view, returning a descriptive error on the first inconsistency
// (checked in sorted UID order, so failures are deterministic). The
// recomputation uses the same sorted-order summation as recomputeCPU,
// so agreement is exact, not epsilon-based. O(entries + uids); the
// check subsystem calls it on lifecycle transitions and at run end.
func (g *Aggregator) Audit() error {
	want := make(map[app.UID][]float64)
	for _, e := range g.entries {
		want[e.uid] = append(want[e.uid], e.demand.CPUUtil)
	}
	uids := make([]app.UID, 0, len(want)+len(g.cpu))
	for uid := range want {
		uids = append(uids, uid)
	}
	for uid := range g.cpu {
		if _, ok := want[uid]; !ok {
			uids = append(uids, uid)
		}
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	for _, uid := range uids {
		utils := want[uid]
		sort.Float64s(utils)
		var total float64
		for _, u := range utils {
			total += u
		}
		cached, ok := g.cpu[uid]
		if total == 0 && ok {
			return fmt.Errorf("hw: aggregator caches cpu %v for uid %d with no contributing demand", cached, uid)
		}
		if total != 0 && cached != total {
			return fmt.Errorf("hw: aggregator cached cpu %v for uid %d, live entries sum to %v", cached, uid, total)
		}
		clamped := total
		if clamped > 1 {
			clamped = 1
		}
		if got := g.meter.CPUUtil(uid); got != clamped {
			return fmt.Errorf("hw: meter cpu %v for uid %d, aggregator expects %v", got, uid, clamped)
		}
	}
	return nil
}
