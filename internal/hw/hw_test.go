package hw

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/app"
	"repro/internal/sim"
)

func testMeter(t *testing.T) (*sim.Engine, *Meter, *Battery) {
	t.Helper()
	e := sim.NewEngine(1)
	b, err := NewBattery(NexusBatteryJ)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMeter(e.Now, Nexus4(), b)
	if err != nil {
		t.Fatal(err)
	}
	return e, m, b
}

func approx(t *testing.T, got, want, tol float64, label string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", label, got, want, tol)
	}
}

func TestProfileValidate(t *testing.T) {
	if err := Nexus4().Validate(); err != nil {
		t.Fatal(err)
	}
	p := Nexus4()
	p.CameraOn = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative coefficient accepted")
	}
	p = Nexus4()
	p.CPUSuspend = p.CPUIdleAwake + 1
	if err := p.Validate(); err == nil {
		t.Fatal("suspend > idle accepted")
	}
	p = Nexus4()
	p.WiFiLow = p.WiFiHigh + 1
	if err := p.Validate(); err == nil {
		t.Fatal("wifi low > high accepted")
	}
}

func TestScreenPowerClamps(t *testing.T) {
	p := Nexus4()
	if p.ScreenPower(-5) != p.ScreenBase {
		t.Fatal("negative brightness not clamped")
	}
	if p.ScreenPower(9999) != p.ScreenBase+255*p.ScreenPerLevel {
		t.Fatal("overlarge brightness not clamped")
	}
}

func TestComponentString(t *testing.T) {
	if CPU.String() != "cpu" || Screen.String() != "screen" || Audio.String() != "audio" {
		t.Fatal("component names wrong")
	}
	if Component(0).String() == "cpu" {
		t.Fatal("zero component should not be cpu")
	}
	if len(Components()) != 6 {
		t.Fatalf("Components() = %v", Components())
	}
}

func TestBattery(t *testing.T) {
	b, err := NewBattery(100)
	if err != nil {
		t.Fatal(err)
	}
	if b.Percent() != 100 || b.Dead() {
		t.Fatal("new battery should be full")
	}
	if err := b.Drain(-1); err == nil {
		t.Fatal("negative drain accepted")
	}
	if err := b.Drain(40); err != nil {
		t.Fatal(err)
	}
	approx(t, b.Percent(), 60, 1e-9, "Percent")
	if err := b.Drain(1000); err != nil {
		t.Fatal(err)
	}
	if !b.Dead() || b.Percent() != 0 || b.RemainingJ() != 0 {
		t.Fatal("overdrain should clamp to empty")
	}
	if b.CapacityJ() != 100 || b.DrainedJ() != 100 {
		t.Fatal("capacity accounting wrong")
	}
	if _, err := NewBattery(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestMeterConstructorValidation(t *testing.T) {
	b, _ := NewBattery(1)
	if _, err := NewMeter(nil, Nexus4(), b); err == nil {
		t.Fatal("nil clock accepted")
	}
	e := sim.NewEngine(1)
	bad := Nexus4()
	bad.CPUFull = -1
	if _, err := NewMeter(e.Now, bad, b); err == nil {
		t.Fatal("bad profile accepted")
	}
	if _, err := NewMeter(e.Now, Nexus4(), nil); err == nil {
		t.Fatal("nil battery accepted")
	}
}

func TestIdleAwakeBaseline(t *testing.T) {
	e, m, b := testMeter(t)
	var sysJ float64
	m.AddSink(SinkFunc(func(iv Interval) { sysJ += iv.SystemJ }))
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	want := Nexus4().CPUIdleAwake / 1000 * 10
	approx(t, sysJ, want, 1e-9, "system energy")
	approx(t, b.DrainedJ(), want, 1e-9, "battery drain")
}

func TestSuspendDrawsSuspendPower(t *testing.T) {
	e, m, b := testMeter(t)
	m.SetSuspended(true)
	m.SetCPUUtil(42, 1.0) // halted while suspended: must not draw
	if err := m.Hold(Camera, 42); err != nil {
		t.Fatal(err)
	}
	m.SetScreen(true)
	if err := e.RunFor(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	want := Nexus4().CPUSuspend / 1000 * 100
	approx(t, b.DrainedJ(), want, 1e-9, "suspended drain")
}

func TestCPUUtilAttribution(t *testing.T) {
	e, m, _ := testMeter(t)
	per := map[app.UID]float64{}
	m.AddSink(SinkFunc(func(iv Interval) {
		iv.EachApp(func(uid app.UID, u *UsageRow) {
			per[uid] += u.J(CPU)
		})
	}))
	m.SetCPUUtil(100, 0.5)
	m.SetCPUUtil(200, 0.25)
	if err := e.RunFor(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.SetCPUUtil(100, 0) // app stops
	if err := e.RunFor(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	p := Nexus4()
	approx(t, per[100], 0.5*p.CPUFull/1000*8, 1e-9, "uid 100 cpu")
	approx(t, per[200], 0.25*p.CPUFull/1000*16, 1e-9, "uid 200 cpu")
}

func TestCPUUtilClamped(t *testing.T) {
	_, m, _ := testMeter(t)
	m.SetCPUUtil(1, 7.5)
	if got := m.CPUUtil(1); got != 1 {
		t.Fatalf("util = %v, want clamped 1", got)
	}
	m.SetCPUUtil(1, -3)
	if got := m.CPUUtil(1); got != 0 {
		t.Fatalf("util = %v, want clamped 0", got)
	}
}

func TestScreenEnergySeparate(t *testing.T) {
	e, m, _ := testMeter(t)
	var screenJ float64
	m.AddSink(SinkFunc(func(iv Interval) { screenJ += iv.ScreenJ }))
	m.SetScreen(true)
	m.SetBrightness(255)
	if err := e.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.SetScreen(false)
	if err := e.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	want := Nexus4().ScreenPower(255) / 1000 * 30
	approx(t, screenJ, want, 1e-9, "screen energy")
}

func TestBrightnessChangeMidRun(t *testing.T) {
	e, m, _ := testMeter(t)
	var screenJ float64
	m.AddSink(SinkFunc(func(iv Interval) { screenJ += iv.ScreenJ }))
	m.SetScreen(true)
	m.SetBrightness(0)
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.SetBrightness(255)
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	p := Nexus4()
	want := (p.ScreenPower(0) + p.ScreenPower(255)) / 1000 * 10
	approx(t, screenJ, want, 1e-9, "screen energy across brightness change")
}

func TestBrightnessClamped(t *testing.T) {
	_, m, _ := testMeter(t)
	m.SetBrightness(500)
	if m.Brightness() != 255 {
		t.Fatalf("brightness = %d", m.Brightness())
	}
	m.SetBrightness(-4)
	if m.Brightness() != 0 {
		t.Fatalf("brightness = %d", m.Brightness())
	}
}

func TestPeripheralHolds(t *testing.T) {
	e, m, _ := testMeter(t)
	per := map[app.UID]Usage{}
	m.AddSink(SinkFunc(func(iv Interval) {
		iv.EachApp(func(uid app.UID, u *UsageRow) {
			if per[uid] == nil {
				per[uid] = make(Usage)
			}
			per[uid].Add(u.Usage())
		})
	}))
	if err := m.Hold(Camera, 7); err != nil {
		t.Fatal(err)
	}
	if !m.Holding(Camera, 7) {
		t.Fatal("Holding should be true")
	}
	if err := e.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(Camera, 7); err != nil {
		t.Fatal(err)
	}
	if err := e.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	want := Nexus4().CameraOn / 1000 * 30
	approx(t, per[7][Camera], want, 1e-9, "camera energy")
}

func TestPeripheralSharedHoldSplitsEnergy(t *testing.T) {
	e, m, _ := testMeter(t)
	per := map[app.UID]float64{}
	m.AddSink(SinkFunc(func(iv Interval) {
		iv.EachApp(func(uid app.UID, u *UsageRow) {
			per[uid] += u.J(GPS)
		})
	}))
	if err := m.Hold(GPS, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Hold(GPS, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	each := Nexus4().GPSOn / 1000 * 10 / 2
	approx(t, per[1], each, 1e-9, "uid1 gps share")
	approx(t, per[2], each, 1e-9, "uid2 gps share")
}

func TestHoldErrors(t *testing.T) {
	_, m, _ := testMeter(t)
	if err := m.Hold(CPU, 1); err == nil {
		t.Fatal("holding CPU should fail")
	}
	if err := m.Release(Screen, 1); err == nil {
		t.Fatal("releasing Screen should fail")
	}
	if err := m.Release(Camera, 1); err == nil {
		t.Fatal("release without hold should fail")
	}
}

func TestNestedHolds(t *testing.T) {
	e, m, _ := testMeter(t)
	if err := m.Hold(WiFi, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Hold(WiFi, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(WiFi, 3); err != nil {
		t.Fatal(err)
	}
	if !m.Holding(WiFi, 3) {
		t.Fatal("nested hold released too early")
	}
	if err := m.Release(WiFi, 3); err != nil {
		t.Fatal(err)
	}
	if m.Holding(WiFi, 3) {
		t.Fatal("hold not released")
	}
	_ = e
}

func TestInstantPowerMW(t *testing.T) {
	_, m, _ := testMeter(t)
	p := Nexus4()
	approx(t, m.InstantPowerMW(), p.CPUIdleAwake, 1e-9, "idle power")
	m.SetScreen(true)
	m.SetBrightness(100)
	m.SetCPUUtil(1, 0.5)
	want := p.CPUIdleAwake + p.ScreenPower(100) + 0.5*p.CPUFull
	approx(t, m.InstantPowerMW(), want, 1e-9, "active power")
	m.SetSuspended(true)
	approx(t, m.InstantPowerMW(), p.CPUSuspend, 1e-9, "suspend power")
}

func TestUIDs(t *testing.T) {
	_, m, _ := testMeter(t)
	m.SetCPUUtil(30, 0.1)
	if err := m.Hold(Audio, 10); err != nil {
		t.Fatal(err)
	}
	got := m.UIDs()
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("UIDs = %v", got)
	}
}

func TestUsageHelpers(t *testing.T) {
	u := Usage{CPU: 1, Screen: 2}
	if u.Total() != 3 {
		t.Fatalf("Total = %v", u.Total())
	}
	c := u.Clone()
	c[CPU] = 100
	if u[CPU] != 1 {
		t.Fatal("Clone aliases source")
	}
	u.Add(Usage{CPU: 4})
	if u[CPU] != 5 {
		t.Fatalf("Add: cpu = %v", u[CPU])
	}
}

// Property: battery drain always equals the sum of energy delivered to
// sinks, for arbitrary interleavings of state changes.
func TestPropertyBatteryMatchesSinkTotal(t *testing.T) {
	prop := func(ops []uint8) bool {
		e := sim.NewEngine(9)
		b, _ := NewBattery(1e12)
		m, _ := NewMeter(e.Now, Nexus4(), b)
		var sunk float64
		m.AddSink(SinkFunc(func(iv Interval) {
			iv.EachApp(func(_ app.UID, u *UsageRow) {
				sunk += u.Total()
			})
			sunk += iv.ScreenJ + iv.SystemJ
		}))
		for _, op := range ops {
			if err := e.RunFor(time.Duration(op%50) * time.Second); err != nil {
				return false
			}
			switch op % 7 {
			case 0:
				m.SetScreen(!m.ScreenOn())
			case 1:
				m.SetBrightness(int(op) * 2)
			case 2:
				m.SetCPUUtil(app.UID(op%3), float64(op%10)/10)
			case 3:
				_ = m.Hold(Camera, app.UID(op%3))
			case 4:
				_ = m.Release(Camera, app.UID(op%3)) // may error; fine
			case 5:
				m.SetSuspended(!m.Suspended())
			case 6:
				m.Flush()
			}
		}
		m.Flush()
		return math.Abs(sunk-b.DrainedJ()) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy over any interval is non-negative for every bucket.
func TestPropertyNonNegativeEnergy(t *testing.T) {
	prop := func(bright uint8, util float64, secs uint8) bool {
		e := sim.NewEngine(4)
		b, _ := NewBattery(1e12)
		m, _ := NewMeter(e.Now, Nexus4(), b)
		ok := true
		m.AddSink(SinkFunc(func(iv Interval) {
			if iv.ScreenJ < 0 || iv.SystemJ < 0 {
				ok = false
			}
			iv.EachApp(func(_ app.UID, u *UsageRow) {
				for c := CPU; c <= Audio; c++ {
					if u.J(c) < 0 {
						ok = false
					}
				}
			})
		}))
		m.SetScreen(true)
		m.SetBrightness(int(bright))
		m.SetCPUUtil(1, util)
		if err := e.RunFor(time.Duration(secs) * time.Second); err != nil {
			return false
		}
		m.Flush()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
