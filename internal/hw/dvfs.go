package hw

import (
	"fmt"
	"slices"
	"sort"
)

// FreqLevel is one DVFS operating point: a core frequency and the draw
// of a fully-busy core at that frequency. PowerTutor's CPU model is
// per-frequency ("P = c_f * util_f"); this reproduces that shape.
type FreqLevel struct {
	MHz      int
	ActiveMW float64
}

// Nexus4DVFS returns the default profile with an ondemand-style DVFS
// ladder enabled (Snapdragon S4 Pro-like operating points). With DVFS,
// light loads run at low frequency and draw disproportionately less than
// the linear model predicts.
func Nexus4DVFS() Profile {
	p := Nexus4()
	p.CPUFreqs = []FreqLevel{
		{MHz: 384, ActiveMW: 110},
		{MHz: 702, ActiveMW: 210},
		{MHz: 1026, ActiveMW: 330},
		{MHz: 1242, ActiveMW: 440},
		{MHz: 1512, ActiveMW: 600},
	}
	return p
}

// validateFreqs checks the DVFS ladder (empty = linear model, valid).
func (p Profile) validateFreqs() error {
	if len(p.CPUFreqs) == 0 {
		return nil
	}
	for i, f := range p.CPUFreqs {
		if f.MHz <= 0 || f.ActiveMW <= 0 {
			return fmt.Errorf("hw: freq level %d not positive: %+v", i, f)
		}
		if i > 0 {
			prev := p.CPUFreqs[i-1]
			if f.MHz <= prev.MHz {
				return fmt.Errorf("hw: freq levels not ascending at %d", i)
			}
			if f.ActiveMW < prev.ActiveMW {
				return fmt.Errorf("hw: freq power not monotone at %d", i)
			}
		}
	}
	return nil
}

// governorLevel picks the lowest operating point whose relative capacity
// covers the total utilization (ondemand-like). totalUtil is relative to
// the top frequency.
func (p Profile) governorLevel(totalUtil float64) FreqLevel {
	levels := p.CPUFreqs
	top := float64(levels[len(levels)-1].MHz)
	idx := sort.Search(len(levels), func(i int) bool {
		return float64(levels[i].MHz)/top >= totalUtil
	})
	if idx >= len(levels) {
		idx = len(levels) - 1
	}
	return levels[idx]
}

// effectiveCPUFullMW reports the marginal cost, in mW per unit of
// (top-frequency-relative) utilization, at the current operating point.
// With an empty ladder this is the linear model's CPUFull.
//
// At level f with relative capacity c = MHz_f / MHz_top, a total load U
// keeps the core busy U/c of the time, drawing (U/c)·ActiveMW_f — so the
// marginal cost is ActiveMW_f / c.
func (p Profile) effectiveCPUFullMW(totalUtil float64) float64 {
	if len(p.CPUFreqs) == 0 {
		return p.CPUFull
	}
	if totalUtil <= 0 {
		totalUtil = 0
	}
	if totalUtil > 1 {
		totalUtil = 1
	}
	lvl := p.governorLevel(totalUtil)
	top := float64(p.CPUFreqs[len(p.CPUFreqs)-1].MHz)
	capacity := float64(lvl.MHz) / top
	return lvl.ActiveMW / capacity
}

// totalCPUUtil sums the per-app utilizations, clamped to one core. The
// values are still summed in ascending value order (bit-determinism: map
// iteration used to be neutralized the same way), but into a reusable
// scratch buffer instead of a freshly allocated slice per evaluation —
// this ran on every integrated segment and every instantaneous-power
// sample, and was the single largest allocation site in the fleet bench.
func (m *Meter) totalCPUUtil() float64 {
	utils := m.utilScratch[:0]
	for _, uid := range m.liveUIDs {
		if u := m.cols.cpuUtil[uid-m.cols.base]; u != 0 {
			utils = append(utils, u)
		}
	}
	m.utilScratch = utils
	slices.Sort(utils)
	var total float64
	for _, u := range utils {
		total += u
	}
	if total > 1 {
		total = 1
	}
	return total
}

// cpuMarginalMW is the per-unit-utilization CPU cost at the current
// operating point. The result is cached until the next SetCPUUtil — the
// only mutation it depends on — so the per-app instantaneous-power
// sampler pays the collect+sort once per attribution change instead of
// once per call. The cached float is the exact value a fresh evaluation
// would produce, so results stay bit-deterministic.
func (m *Meter) cpuMarginalMW() float64 {
	if !m.cpuMWValid {
		m.cpuMW = m.profile.effectiveCPUFullMW(m.totalCPUUtil())
		m.cpuMWValid = true
	}
	return m.cpuMW
}
