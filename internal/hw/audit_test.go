package hw

import (
	"math"
	"testing"
)

// Regression: Set and Clear used to mutate the entry table and the
// meter's CPU view before discovering that a peripheral release had no
// backing hold, leaving the aggregator half-updated on error. Both must
// now validate first and leave every observable untouched on failure.
func TestAggregatorSetClearAtomicOnInvalidRelease(t *testing.T) {
	_, m, g := aggFixture(t)
	k := new(int)
	if err := g.Set(k, 7, Demand{Camera: true, CPUUtil: 0.4}); err != nil {
		t.Fatal(err)
	}
	// Desync: something releases the camera behind the aggregator's back.
	if err := m.Release(Camera, 7); err != nil {
		t.Fatal(err)
	}

	// Replacing the demand implies releasing a camera that is no longer
	// held — the operation must fail without touching any state.
	if err := g.Set(k, 7, Demand{CPUUtil: 0.2}); err == nil {
		t.Fatal("Set succeeded despite an unreleasable camera hold")
	}
	if got := m.CPUUtil(7); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("failed Set leaked into the meter: util %v, want 0.4", got)
	}
	if !g.Has(k) || g.Entries() != 1 {
		t.Fatal("failed Set mutated the entry table")
	}

	if err := g.Clear(k); err == nil {
		t.Fatal("Clear succeeded despite an unreleasable camera hold")
	}
	if got := m.CPUUtil(7); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("failed Clear leaked into the meter: util %v, want 0.4", got)
	}
	if !g.Has(k) || g.Entries() != 1 {
		t.Fatal("failed Clear removed the entry")
	}

	// Re-sync the hold: the entry must still be fully operable.
	if err := m.Hold(Camera, 7); err != nil {
		t.Fatal(err)
	}
	if err := g.Clear(k); err != nil {
		t.Fatalf("Clear after re-sync: %v", err)
	}
	if g.Entries() != 0 || m.CPUUtil(7) != 0 {
		t.Fatal("state not clean after recovered Clear")
	}
}

func TestAggregatorAuditCleanOnHealthyState(t *testing.T) {
	_, _, g := aggFixture(t)
	k1, k2 := new(int), new(int)
	if err := g.Set(k1, 7, Demand{CPUUtil: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := g.Set(k2, 7, Demand{CPUUtil: 0.9}); err != nil { // clamps at the meter
		t.Fatal(err)
	}
	if err := g.Set(new(int), 8, Demand{GPS: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.Audit(); err != nil {
		t.Fatalf("audit of healthy aggregator: %v", err)
	}
}

func TestAggregatorAuditDetectsMeterDesync(t *testing.T) {
	_, m, g := aggFixture(t)
	if err := g.Set(new(int), 7, Demand{CPUUtil: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := g.Audit(); err != nil {
		t.Fatalf("clean audit failed: %v", err)
	}
	// A write that bypasses the aggregator breaks the meter-view
	// invariant the audit asserts.
	m.SetCPUUtil(7, 0.9)
	if err := g.Audit(); err == nil {
		t.Fatal("audit missed a meter write that bypassed the aggregator")
	}
}
