package hw

import (
	"fmt"
	"sort"

	"repro/internal/app"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Usage is per-component energy in joules attributed to one app.
type Usage map[Component]float64

// Total sums the usage across components. Summation runs in fixed
// component order so results are bit-deterministic across runs (Go map
// iteration order would otherwise reorder floating-point additions).
func (u Usage) Total() float64 {
	var t float64
	for _, c := range Components() {
		t += u[c]
	}
	return t
}

// Clone returns an independent copy.
func (u Usage) Clone() Usage {
	c := make(Usage, len(u))
	for k, v := range u {
		c[k] = v
	}
	return c
}

// Add accumulates other into u.
func (u Usage) Add(other Usage) {
	for k, v := range other {
		u[k] += v
	}
}

// Interval is one integrated span of constant power, delivered to sinks.
type Interval struct {
	From, To sim.Time
	// PerUID holds each app's own hardware energy over the interval
	// (CPU, camera, GPS, WiFi, audio — everything except the screen).
	PerUID map[app.UID]Usage
	// ScreenJ is display energy over the interval; its attribution is a
	// policy decision made downstream, so the meter reports it raw.
	ScreenJ float64
	// SystemJ is platform base energy (suspend or idle-awake draw).
	SystemJ float64
}

// Duration reports the interval length.
func (iv Interval) Duration() sim.Duration { return iv.To.Sub(iv.From) }

// Sink consumes integrated intervals. The meter calls sinks in
// registration order with the same Interval value; sinks must not retain
// or mutate PerUID.
type Sink interface {
	Accrue(Interval)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Interval)

// Accrue implements Sink.
func (f SinkFunc) Accrue(iv Interval) { f(iv) }

// Meter tracks device hardware state and integrates energy exactly over
// each span of constant power.
//
// All state setters first close the current interval (integrating energy
// at the old power level up to now), then apply the change, so callers
// never need to worry about ordering within a single instant.
type Meter struct {
	now     func() sim.Time
	profile Profile
	battery *Battery
	sinks   []Sink

	lastT sim.Time

	suspended  bool
	screenOn   bool
	screenDim  bool
	brightness int

	cpuUtil map[app.UID]float64
	// Peripheral holds are counted (an app may hold a device from
	// several components at once).
	holds map[Component]map[app.UID]int

	// wifiTails tracks per-app radio ramp-down: after an app's last WiFi
	// hold drops, the radio lingers in its low-power state until the
	// recorded instant, still billed to that app (tail energy). Accrual
	// splits intervals at tail expiries, so tail energy stays exact.
	wifiTails map[app.UID]sim.Time

	// tel receives power-state changes, battery updates and per-component
	// power distributions; nil (the default) costs one branch per change.
	tel *telemetry.Recorder
}

// NewMeter builds a meter over the given clock, profile and battery.
// Sinks may be added later with AddSink.
func NewMeter(now func() sim.Time, profile Profile, battery *Battery) (*Meter, error) {
	if now == nil {
		return nil, fmt.Errorf("hw: nil clock")
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if battery == nil {
		return nil, fmt.Errorf("hw: nil battery")
	}
	m := &Meter{
		now:        now,
		profile:    profile,
		battery:    battery,
		lastT:      now(),
		brightness: 102, // Android's default ~40% brightness
		cpuUtil:    make(map[app.UID]float64),
		holds:      make(map[Component]map[app.UID]int),
		wifiTails:  make(map[app.UID]sim.Time),
	}
	return m, nil
}

// AddSink registers a consumer of integrated intervals.
func (m *Meter) AddSink(s Sink) { m.sinks = append(m.sinks, s) }

// SetTelemetry wires a telemetry recorder (nil detaches it).
func (m *Meter) SetTelemetry(rec *telemetry.Recorder) { m.tel = rec }

func b01(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// Profile returns the active power profile.
func (m *Meter) Profile() Profile { return m.profile }

// Battery returns the battery being drained.
func (m *Meter) Battery() *Battery { return m.battery }

// ScreenOn reports whether the display is lit.
func (m *Meter) ScreenOn() bool { return m.screenOn }

// Brightness reports the current brightness level (0-255).
func (m *Meter) Brightness() int { return m.brightness }

// Suspended reports whether the platform is in deep sleep.
func (m *Meter) Suspended() bool { return m.suspended }

// CPUUtil reports the utilization currently attributed to uid.
func (m *Meter) CPUUtil(uid app.UID) float64 { return m.cpuUtil[uid] }

// Flush integrates energy up to the current instant without changing any
// state. Call before reading accounting results.
func (m *Meter) Flush() { m.accrue() }

// SetSuspended moves the platform in or out of deep sleep. While
// suspended, app CPU work and peripherals draw nothing (processes are
// halted), matching Android's suspend semantics. Suspending also kills
// any lingering radio tails.
func (m *Meter) SetSuspended(v bool) {
	if m.suspended == v {
		return
	}
	m.accrue()
	m.tel.RecordPowerState(m.now(), app.UIDNone, "suspend", b01(m.suspended), b01(v))
	m.suspended = v
	if v {
		for uid := range m.wifiTails {
			delete(m.wifiTails, uid)
		}
	}
}

// SetScreen switches the display on or off.
func (m *Meter) SetScreen(on bool) {
	if m.screenOn == on {
		return
	}
	m.accrue()
	m.tel.RecordPowerState(m.now(), app.UIDNone, "screen", b01(m.screenOn), b01(on))
	m.screenOn = on
	if !on {
		m.screenDim = false
	}
}

// SetScreenDim dims or undims the lit display (the SCREEN_DIM_WAKE_LOCK
// state: visible but at a fraction of the set brightness).
func (m *Meter) SetScreenDim(dim bool) {
	if m.screenDim == dim {
		return
	}
	m.accrue()
	m.tel.RecordPowerState(m.now(), app.UIDNone, "screen_dim", b01(m.screenDim), b01(dim))
	m.screenDim = dim
}

// ScreenDimmed reports whether the display is in the dim state.
func (m *Meter) ScreenDimmed() bool { return m.screenDim }

// SetBrightness sets the display brightness level, clamped to [0, 255].
func (m *Meter) SetBrightness(level int) {
	if level < 0 {
		level = 0
	}
	if level > MaxBrightness {
		level = MaxBrightness
	}
	if m.brightness == level {
		return
	}
	m.accrue()
	m.tel.RecordPowerState(m.now(), app.UIDNone, "brightness", float64(m.brightness), float64(level))
	m.brightness = level
}

// SetCPUUtil sets the total CPU utilization attributed to uid, clamped to
// [0, 1].
func (m *Meter) SetCPUUtil(uid app.UID, util float64) {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	if m.cpuUtil[uid] == util {
		return
	}
	m.accrue()
	m.tel.RecordPowerState(m.now(), uid, "cpu", m.cpuUtil[uid], util)
	if util == 0 {
		delete(m.cpuUtil, uid)
	} else {
		m.cpuUtil[uid] = util
	}
}

// Hold records that uid powered component c (camera, GPS, WiFi, audio).
// Holds nest: each Hold needs a matching Release. Re-holding the WiFi
// radio cancels any pending tail for the holder.
func (m *Meter) Hold(c Component, uid app.UID) error {
	if !peripheral(c) {
		return fmt.Errorf("hw: cannot hold %v", c)
	}
	m.accrue()
	if m.holds[c] == nil {
		m.holds[c] = make(map[app.UID]int)
	}
	m.holds[c][uid]++
	m.tel.RecordPowerState(m.now(), uid, c.String(), float64(m.holds[c][uid]-1), float64(m.holds[c][uid]))
	if c == WiFi {
		delete(m.wifiTails, uid)
	}
	return nil
}

// Release drops one hold of component c by uid. Dropping the last WiFi
// hold moves the radio into its low-power tail state for the holder,
// billed until Profile.WiFiTail elapses.
func (m *Meter) Release(c Component, uid app.UID) error {
	if !peripheral(c) {
		return fmt.Errorf("hw: cannot release %v", c)
	}
	if m.holds[c][uid] <= 0 {
		return fmt.Errorf("hw: release of %v by uid %d without hold", c, uid)
	}
	m.accrue()
	m.holds[c][uid]--
	m.tel.RecordPowerState(m.now(), uid, c.String(), float64(m.holds[c][uid]+1), float64(m.holds[c][uid]))
	if m.holds[c][uid] == 0 {
		delete(m.holds[c], uid)
		if c == WiFi && m.profile.WiFiTail > 0 && m.profile.WiFiLow > 0 {
			m.wifiTails[uid] = m.now().Add(m.profile.WiFiTail)
		}
	}
	return nil
}

// InWiFiTail reports whether uid's radio is in its ramp-down state.
func (m *Meter) InWiFiTail(uid app.UID) bool {
	exp, ok := m.wifiTails[uid]
	return ok && exp.After(m.now())
}

// Holding reports whether uid currently powers component c.
func (m *Meter) Holding(c Component, uid app.UID) bool {
	return m.holds[c][uid] > 0
}

func peripheral(c Component) bool {
	switch c {
	case Camera, GPS, WiFi, Audio:
		return true
	}
	return false
}

func (m *Meter) peripheralPower(c Component) float64 {
	switch c {
	case Camera:
		return m.profile.CameraOn
	case GPS:
		return m.profile.GPSOn
	case WiFi:
		return m.profile.WiFiHigh
	case Audio:
		return m.profile.AudioOn
	default:
		return 0
	}
}

// accrue closes the span [lastT, now) and feeds it to every sink and the
// battery. The span is split at WiFi tail expiries so tail energy
// integrates exactly.
func (m *Meter) accrue() {
	t := m.now()
	if t < m.lastT {
		panic(fmt.Sprintf("hw: clock went backwards: %v < %v", t, m.lastT))
	}
	for m.lastT < t {
		segEnd := t
		for _, exp := range m.wifiTails {
			if exp > m.lastT && exp < segEnd {
				segEnd = exp
			}
		}
		m.accrueSegment(segEnd)
		for uid, exp := range m.wifiTails {
			if exp <= m.lastT {
				delete(m.wifiTails, uid)
			}
		}
	}
}

// accrueSegment integrates [lastT, t) at constant power.
func (m *Meter) accrueSegment(t sim.Time) {
	if t == m.lastT {
		return
	}
	secs := t.Sub(m.lastT).Seconds()

	iv := Interval{From: m.lastT, To: t, PerUID: make(map[app.UID]Usage)}
	usage := func(uid app.UID) Usage {
		u := iv.PerUID[uid]
		if u == nil {
			u = make(Usage)
			iv.PerUID[uid] = u
		}
		return u
	}

	// Platform base draw.
	base := m.profile.CPUIdleAwake
	if m.suspended {
		base = m.profile.CPUSuspend
	}
	iv.SystemJ = mWtoJ(base, secs)

	if !m.suspended {
		// Per-app CPU, at the current DVFS operating point (linear when
		// the profile has no frequency ladder).
		cpuMW := m.cpuMarginalMW()
		for uid, util := range m.cpuUtil {
			usage(uid)[CPU] += mWtoJ(util*cpuMW, secs)
		}
		// Peripherals: full component power charged to each holder (if
		// two apps hold the camera, hardware draws once but both keep it
		// on; charge the holder set equally).
		for c, holders := range m.holds {
			if len(holders) == 0 {
				continue
			}
			share := mWtoJ(m.peripheralPower(c), secs) / float64(len(holders))
			for uid := range holders {
				usage(uid)[c] += share
			}
		}
		// Radio tails: apps whose WiFi hold ended recently keep drawing
		// the low-power state until their tail expires.
		for uid, exp := range m.wifiTails {
			if exp > m.lastT {
				usage(uid)[WiFi] += mWtoJ(m.profile.WiFiLow, secs)
			}
		}
		// Screen.
		if m.screenOn {
			iv.ScreenJ = mWtoJ(m.screenPowerNow(), secs)
		}
	}

	m.lastT = t

	uids := make([]app.UID, 0, len(iv.PerUID))
	for uid := range iv.PerUID {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	var total float64
	for _, uid := range uids {
		total += iv.PerUID[uid].Total()
	}
	total += iv.ScreenJ + iv.SystemJ
	if err := m.battery.Drain(total); err != nil {
		panic(err) // unreachable: total is a sum of non-negative terms
	}

	if m.tel.Enabled() {
		m.observeSegment(iv, uids, secs, total)
	}

	for _, s := range m.sinks {
		s.Accrue(iv)
	}
}

// observeSegment feeds telemetry for one accrued segment: the battery
// update event and the per-component mean-power distributions. Summation
// follows the sorted uid slice, so every float result is order-stable
// and metric snapshots stay byte-identical across runs.
func (m *Meter) observeSegment(iv Interval, uids []app.UID, secs, totalJ float64) {
	m.tel.RecordBattery(iv.To, totalJ, m.battery.Percent())
	for _, c := range Components() {
		var j float64
		for _, uid := range uids {
			j += iv.PerUID[uid][c]
		}
		if c == Screen {
			j += iv.ScreenJ
		}
		if j > 0 {
			m.tel.ObserveComponentMW(c.String(), j/secs*1000)
		}
	}
	if iv.SystemJ > 0 {
		m.tel.ObserveComponentMW("system", iv.SystemJ/secs*1000)
	}
}

// InstantPowerMW reports current total platform draw in milliwatts; used
// by depletion sweeps to step analytically between events.
func (m *Meter) InstantPowerMW() float64 {
	base := m.profile.CPUIdleAwake
	if m.suspended {
		base = m.profile.CPUSuspend
	}
	p := base
	if !m.suspended {
		cpuMW := m.cpuMarginalMW()
		for _, util := range m.cpuUtil {
			p += util * cpuMW
		}
		for c, holders := range m.holds {
			if len(holders) > 0 {
				p += m.peripheralPower(c)
			}
		}
		now := m.now()
		for _, exp := range m.wifiTails {
			if exp.After(now) {
				p += m.profile.WiFiLow
			}
		}
		if m.screenOn {
			p += m.screenPowerNow()
		}
	}
	return p
}

// screenPowerNow folds the dim state into the screen power model.
func (m *Meter) screenPowerNow() float64 {
	p := m.profile.ScreenPower(m.brightness)
	if m.screenDim {
		p = m.profile.ScreenPower(0) + (p-m.profile.ScreenPower(0))*dimFactor
	}
	return p
}

// dimFactor is the fraction of above-base brightness draw kept while the
// display is dimmed.
const dimFactor = 0.3

// InstantScreenPowerMW reports the display's current draw in mW.
func (m *Meter) InstantScreenPowerMW() float64 {
	if m.suspended || !m.screenOn {
		return 0
	}
	return m.screenPowerNow()
}

// InstantSystemPowerMW reports the platform base draw in mW.
func (m *Meter) InstantSystemPowerMW() float64 {
	if m.suspended {
		return m.profile.CPUSuspend
	}
	return m.profile.CPUIdleAwake
}

// InstantAppPowerMW reports the power currently drawn by uid's own
// components (CPU plus peripheral holds, excluding screen), in mW. This
// is the per-app trace a power-signature detector samples.
func (m *Meter) InstantAppPowerMW(uid app.UID) float64 {
	if m.suspended {
		return 0
	}
	p := m.cpuUtil[uid] * m.cpuMarginalMW()
	for c, holders := range m.holds {
		if n := holders[uid]; n > 0 {
			p += m.peripheralPower(c) / float64(len(holders))
		}
	}
	if exp, ok := m.wifiTails[uid]; ok && exp.After(m.now()) {
		p += m.profile.WiFiLow
	}
	return p
}

// UIDs returns the set of uids with any live meter state, sorted; useful
// for diagnostics.
func (m *Meter) UIDs() []app.UID {
	set := map[app.UID]bool{}
	for uid := range m.cpuUtil {
		set[uid] = true
	}
	for _, holders := range m.holds {
		for uid := range holders {
			set[uid] = true
		}
	}
	out := make([]app.UID, 0, len(set))
	for uid := range set {
		out = append(out, uid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func mWtoJ(mw, secs float64) float64 { return mw / 1000 * secs }
