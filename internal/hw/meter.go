package hw

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/app"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Usage is per-component energy in joules attributed to one app. It is
// the cold-path (API/report) representation; the metering hot path works
// on dense UsageRow values instead.
type Usage map[Component]float64

// Total sums the usage across components. Summation runs in fixed
// component order so results are bit-deterministic across runs (Go map
// iteration order would otherwise reorder floating-point additions).
func (u Usage) Total() float64 {
	var t float64
	for _, c := range Components() {
		t += u[c]
	}
	return t
}

// Clone returns an independent copy.
func (u Usage) Clone() Usage {
	c := make(Usage, len(u))
	for k, v := range u {
		c[k] = v
	}
	return c
}

// Add accumulates other into u.
func (u Usage) Add(other Usage) {
	for k, v := range other {
		u[k] += v
	}
}

// Sink consumes integrated intervals. The meter calls sinks in
// registration order with the same Interval value, whose per-app table
// is borrowed meter-owned storage: sinks must consume it before
// returning, or Clone() it to retain it (see Interval's borrow
// contract). Sinks must not mutate the rows.
type Sink interface {
	Accrue(Interval)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Interval)

// Accrue implements Sink.
func (f SinkFunc) Accrue(iv Interval) { f(iv) }

// Meter tracks device hardware state and integrates energy exactly over
// each span of constant power.
//
// All state setters first close the current interval (integrating energy
// at the old power level up to now), then apply the change, so callers
// never need to worry about ordering within a single instant.
//
// Per-UID state lives in dense struct-of-arrays columns mirroring
// internal/app's small-int UID assignment (see uidColumns), with the
// live UID set cached as a sorted slice. The cache replaces the
// per-flush "collect keys + sort.Slice" pass the map representation
// needed: it is invalidated (updated in place) only when CPU
// attribution, holds or tails change, never per interval.
type Meter struct {
	now     func() sim.Time
	profile Profile
	battery *Battery
	sinks   []Sink

	lastT sim.Time

	suspended  bool
	screenOn   bool
	screenDim  bool
	brightness int

	// cols is the dense per-UID state table in columnar form.
	cols uidColumns
	// liveUIDs is the sorted cache of UIDs with any live state.
	liveUIDs []app.UID
	// periphMW caches per-component full power (index Component-1), so
	// the accrual loop reads a table instead of switching on the
	// profile per hold.
	periphMW [numComponents]float64
	// cpuMW caches cpuMarginalMW between CPU-attribution changes: the
	// DVFS operating point depends only on the cpuUtil column, so the
	// instantaneous-power sampler (called per app per tick) reuses the
	// exact float the last evaluation produced instead of re-sorting.
	cpuMW      float64
	cpuMWValid bool
	// holderCount[c-1] counts distinct UIDs holding component c; it is
	// the denominator of the per-holder energy share and makes "is c
	// held at all" O(1).
	holderCount [numComponents]int
	// tailCount counts live WiFi tails, so tail-free accrual (the common
	// case) skips the expiry scan entirely.
	tailCount int

	// iv is the reusable interval buffer handed to sinks; its per-app
	// table is reset, not reallocated, on every flush. See Interval's
	// borrow contract.
	iv Interval

	// utilScratch is totalCPUUtil's reusable sort buffer.
	utilScratch []float64
	// uidScratch is a reusable buffer for deferred live-set removals.
	uidScratch []app.UID

	// tel receives power-state changes, battery updates and per-component
	// power distributions; nil (the default) costs one branch per change.
	tel *telemetry.Recorder
}

// NewMeter builds a meter over the given clock, profile and battery.
// Sinks may be added later with AddSink.
func NewMeter(now func() sim.Time, profile Profile, battery *Battery) (*Meter, error) {
	if now == nil {
		return nil, fmt.Errorf("hw: nil clock")
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if battery == nil {
		return nil, fmt.Errorf("hw: nil battery")
	}
	m := &Meter{
		now:        now,
		profile:    profile,
		battery:    battery,
		lastT:      now(),
		brightness: 102, // Android's default ~40% brightness
		iv:         NewInterval(0, 0),
	}
	// Pre-size the columns for a typical app census so the first
	// installs never grow the table (see uidColumns).
	m.cols.init(app.FirstAppUID, 16)
	m.periphMW[Camera-1] = profile.CameraOn
	m.periphMW[GPS-1] = profile.GPSOn
	m.periphMW[WiFi-1] = profile.WiFiHigh
	m.periphMW[Audio-1] = profile.AudioOn
	return m, nil
}

// AddSink registers a consumer of integrated intervals.
func (m *Meter) AddSink(s Sink) { m.sinks = append(m.sinks, s) }

// SetTelemetry wires a telemetry recorder (nil detaches it).
func (m *Meter) SetTelemetry(rec *telemetry.Recorder) { m.tel = rec }

func b01(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// Profile returns the active power profile.
func (m *Meter) Profile() Profile { return m.profile }

// Battery returns the battery being drained.
func (m *Meter) Battery() *Battery { return m.battery }

// ScreenOn reports whether the display is lit.
func (m *Meter) ScreenOn() bool { return m.screenOn }

// Brightness reports the current brightness level (0-255).
func (m *Meter) Brightness() int { return m.brightness }

// Suspended reports whether the platform is in deep sleep.
func (m *Meter) Suspended() bool { return m.suspended }

// stateIdx returns uid's live column slot, or -1.
func (m *Meter) stateIdx(uid app.UID) int {
	i := m.cols.index(uid)
	if i < 0 || !m.cols.live[i] {
		return -1
	}
	return i
}

// stateSlot returns uid's column slot, creating (and activating) it as
// needed and inserting uid into the sorted live cache on first touch.
func (m *Meter) stateSlot(uid app.UID) int {
	i := m.cols.ensure(uid)
	if !m.cols.live[i] {
		m.cols.live[i] = true
		m.insertLive(uid)
	}
	return i
}

func (m *Meter) insertLive(uid app.UID) {
	n := len(m.liveUIDs)
	if n == 0 || uid > m.liveUIDs[n-1] {
		m.liveUIDs = append(m.liveUIDs, uid)
		return
	}
	j := sort.Search(n, func(k int) bool { return m.liveUIDs[k] >= uid })
	m.liveUIDs = append(m.liveUIDs, 0)
	copy(m.liveUIDs[j+1:], m.liveUIDs[j:])
	m.liveUIDs[j] = uid
}

// releaseState drops uid from the live cache when its slot is empty.
func (m *Meter) releaseState(uid app.UID, i int) {
	if !m.cols.emptyAt(i) {
		return
	}
	m.cols.live[i] = false
	for j, u := range m.liveUIDs {
		if u == uid {
			m.liveUIDs = append(m.liveUIDs[:j], m.liveUIDs[j+1:]...)
			return
		}
	}
}

// CPUUtil reports the utilization currently attributed to uid.
func (m *Meter) CPUUtil(uid app.UID) float64 {
	if i := m.stateIdx(uid); i >= 0 {
		return m.cols.cpuUtil[i]
	}
	return 0
}

// Flush integrates energy up to the current instant without changing any
// state. Call before reading accounting results.
func (m *Meter) Flush() { m.accrue() }

// SetSuspended moves the platform in or out of deep sleep. While
// suspended, app CPU work and peripherals draw nothing (processes are
// halted), matching Android's suspend semantics. Suspending also kills
// any lingering radio tails.
func (m *Meter) SetSuspended(v bool) {
	if m.suspended == v {
		return
	}
	m.accrue()
	m.tel.RecordPowerState(m.now(), app.UIDNone, "suspend", b01(m.suspended), b01(v))
	m.suspended = v
	if v && m.tailCount > 0 {
		m.dropTails(0)
	}
}

// dropTails zeroes every tail that has expired by cutoff (cutoff 0 kills
// all of them) and releases emptied slots.
func (m *Meter) dropTails(cutoff sim.Time) {
	m.uidScratch = m.uidScratch[:0]
	for _, uid := range m.liveUIDs {
		i := int(uid - m.cols.base)
		if exp := m.cols.tailExp[i]; exp != 0 && (cutoff == 0 || exp <= cutoff) {
			m.cols.tailExp[i] = 0
			m.tailCount--
			if m.cols.emptyAt(i) {
				m.uidScratch = append(m.uidScratch, uid)
			}
		}
	}
	for _, uid := range m.uidScratch {
		m.releaseState(uid, int(uid-m.cols.base))
	}
}

// SetScreen switches the display on or off.
func (m *Meter) SetScreen(on bool) {
	if m.screenOn == on {
		return
	}
	m.accrue()
	m.tel.RecordPowerState(m.now(), app.UIDNone, "screen", b01(m.screenOn), b01(on))
	m.screenOn = on
	if !on {
		m.screenDim = false
	}
}

// SetScreenDim dims or undims the lit display (the SCREEN_DIM_WAKE_LOCK
// state: visible but at a fraction of the set brightness).
func (m *Meter) SetScreenDim(dim bool) {
	if m.screenDim == dim {
		return
	}
	m.accrue()
	m.tel.RecordPowerState(m.now(), app.UIDNone, "screen_dim", b01(m.screenDim), b01(dim))
	m.screenDim = dim
}

// ScreenDimmed reports whether the display is in the dim state.
func (m *Meter) ScreenDimmed() bool { return m.screenDim }

// SetBrightness sets the display brightness level, clamped to [0, 255].
func (m *Meter) SetBrightness(level int) {
	if level < 0 {
		level = 0
	}
	if level > MaxBrightness {
		level = MaxBrightness
	}
	if m.brightness == level {
		return
	}
	m.accrue()
	m.tel.RecordPowerState(m.now(), app.UIDNone, "brightness", float64(m.brightness), float64(level))
	m.brightness = level
}

// SetCPUUtil sets the total CPU utilization attributed to uid, clamped to
// [0, 1].
func (m *Meter) SetCPUUtil(uid app.UID, util float64) {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	if m.CPUUtil(uid) == util {
		return
	}
	m.accrue()
	i := m.stateSlot(uid)
	m.tel.RecordPowerState(m.now(), uid, "cpu", m.cols.cpuUtil[i], util)
	m.cols.cpuUtil[i] = util
	// The only mutation the DVFS operating point depends on.
	m.cpuMWValid = false
	m.releaseState(uid, i)
}

// Hold records that uid powered component c (camera, GPS, WiFi, audio).
// Holds nest: each Hold needs a matching Release. Re-holding the WiFi
// radio cancels any pending tail for the holder.
func (m *Meter) Hold(c Component, uid app.UID) error {
	if !peripheral(c) {
		return fmt.Errorf("hw: cannot hold %v", c)
	}
	m.accrue()
	i := m.stateSlot(uid)
	ci := int(c - 1)
	if m.cols.holds[ci][i] == 0 {
		m.holderCount[ci]++
		m.cols.holdMask[i] |= 1 << uint(ci)
	}
	m.cols.holds[ci][i]++
	n := m.cols.holds[ci][i]
	m.tel.RecordPowerState(m.now(), uid, c.String(), float64(n-1), float64(n))
	if c == WiFi && m.cols.tailExp[i] != 0 {
		m.cols.tailExp[i] = 0
		m.tailCount--
	}
	return nil
}

// Release drops one hold of component c by uid. Dropping the last WiFi
// hold moves the radio into its low-power tail state for the holder,
// billed until Profile.WiFiTail elapses.
func (m *Meter) Release(c Component, uid app.UID) error {
	if !peripheral(c) {
		return fmt.Errorf("hw: cannot release %v", c)
	}
	i := m.stateIdx(uid)
	ci := int(c - 1)
	if i < 0 || m.cols.holds[ci][i] <= 0 {
		return fmt.Errorf("hw: release of %v by uid %d without hold", c, uid)
	}
	m.accrue()
	m.cols.holds[ci][i]--
	n := m.cols.holds[ci][i]
	m.tel.RecordPowerState(m.now(), uid, c.String(), float64(n+1), float64(n))
	if n == 0 {
		m.holderCount[ci]--
		m.cols.holdMask[i] &^= 1 << uint(ci)
		if c == WiFi && m.profile.WiFiTail > 0 && m.profile.WiFiLow > 0 {
			m.cols.tailExp[i] = m.now().Add(m.profile.WiFiTail)
			m.tailCount++
		}
		m.releaseState(uid, i)
	}
	return nil
}

// InWiFiTail reports whether uid's radio is in its ramp-down state.
func (m *Meter) InWiFiTail(uid app.UID) bool {
	i := m.stateIdx(uid)
	return i >= 0 && m.cols.tailExp[i] != 0 && m.cols.tailExp[i].After(m.now())
}

// Holding reports whether uid currently powers component c.
func (m *Meter) Holding(c Component, uid app.UID) bool {
	if !peripheral(c) {
		return false
	}
	i := m.stateIdx(uid)
	return i >= 0 && m.cols.holds[c-1][i] > 0
}

func peripheral(c Component) bool {
	switch c {
	case Camera, GPS, WiFi, Audio:
		return true
	}
	return false
}

// peripheralPower reads the per-component full-power table built at
// construction (zero for CPU/Screen, which cannot be held).
func (m *Meter) peripheralPower(c Component) float64 {
	return m.periphMW[c-1]
}

// accrue closes the span [lastT, now) and feeds it to every sink and the
// battery. The span is split at WiFi tail expiries so tail energy
// integrates exactly.
func (m *Meter) accrue() {
	t := m.now()
	if t < m.lastT {
		panic(fmt.Sprintf("hw: clock went backwards: %v < %v", t, m.lastT))
	}
	for m.lastT < t {
		segEnd := t
		if m.tailCount > 0 {
			for _, uid := range m.liveUIDs {
				if exp := m.cols.tailExp[uid-m.cols.base]; exp > m.lastT && exp < segEnd {
					segEnd = exp
				}
			}
		}
		m.accrueSegment(segEnd)
		if m.tailCount > 0 {
			m.dropTails(m.lastT)
		}
	}
}

// accrueSegment integrates [lastT, t) at constant power into the meter's
// reusable interval buffer and hands it to the sinks (borrowed: the next
// segment overwrites it).
func (m *Meter) accrueSegment(t sim.Time) {
	if t == m.lastT {
		return
	}
	secs := t.Sub(m.lastT).Seconds()

	iv := &m.iv
	iv.From, iv.To = m.lastT, t
	iv.ScreenJ, iv.SystemJ = 0, 0
	iv.apps.Reset()

	// Platform base draw.
	base := m.profile.CPUIdleAwake
	if m.suspended {
		base = m.profile.CPUSuspend
	}
	iv.SystemJ = mWtoJ(base, secs)

	if !m.suspended {
		// One pass over the sorted live-UID cache replaces the map walks
		// and the per-flush key sort: rows are created under exactly the
		// old conditions (attributed CPU, any held peripheral, a live
		// tail), so the charged-UID set is unchanged, and ascending-UID
		// iteration keeps the table's active set sorted for free.
		cpuMW := m.cpuMarginalMW()
		for _, uid := range m.liveUIDs {
			i := int(uid - m.cols.base)
			var row *UsageRow
			if u := m.cols.cpuUtil[i]; u != 0 {
				// Per-app CPU, at the current DVFS operating point
				// (linear when the profile has no frequency ladder).
				row = iv.apps.Row(uid)
				row.Add(CPU, mWtoJ(u*cpuMW, secs))
			}
			// Peripherals: full component power charged to each holder
			// (if two apps hold the camera, hardware draws once but both
			// keep it on; charge the holder set equally). The hold mask
			// walks only the set components, in ascending component
			// order like the struct loop it replaces.
			for mask := m.cols.holdMask[i]; mask != 0; mask &= mask - 1 {
				ci := bits.TrailingZeros8(mask)
				c := Component(ci + 1)
				share := mWtoJ(m.periphMW[ci], secs) / float64(m.holderCount[ci])
				if row == nil {
					row = iv.apps.Row(uid)
				}
				row.Add(c, share)
			}
			// Radio tails: apps whose WiFi hold ended recently keep
			// drawing the low-power state until their tail expires.
			if m.cols.tailExp[i] > m.lastT {
				if row == nil {
					row = iv.apps.Row(uid)
				}
				row.Add(WiFi, mWtoJ(m.profile.WiFiLow, secs))
			}
		}
		// Screen.
		if m.screenOn {
			iv.ScreenJ = mWtoJ(m.screenPowerNow(), secs)
		}
	}

	m.lastT = t

	total := iv.AppsTotalJ()
	total += iv.ScreenJ + iv.SystemJ
	if err := m.battery.Drain(total); err != nil {
		panic(err) // unreachable: total is a sum of non-negative terms
	}

	if m.tel.Enabled() {
		m.observeSegment(iv, secs, total)
	}

	for _, s := range m.sinks {
		s.Accrue(*iv)
	}
}

// observeSegment feeds telemetry for one accrued segment: the battery
// update event and the per-component mean-power distributions. Summation
// follows the table's sorted UID order, so every float result is
// order-stable and metric snapshots stay byte-identical across runs.
func (m *Meter) observeSegment(iv *Interval, secs, totalJ float64) {
	m.tel.RecordBattery(iv.To, totalJ, m.battery.Percent())
	uids := iv.apps.UIDs()
	for _, c := range Components() {
		var j float64
		for _, uid := range uids {
			j += iv.apps.Get(uid).J(c)
		}
		if c == Screen {
			j += iv.ScreenJ
		}
		if j > 0 {
			m.tel.ObserveComponentMW(c.String(), j/secs*1000)
		}
	}
	if iv.SystemJ > 0 {
		m.tel.ObserveComponentMW("system", iv.SystemJ/secs*1000)
	}
}

// InstantPowerMW reports current total platform draw in milliwatts; used
// by depletion sweeps to step analytically between events.
func (m *Meter) InstantPowerMW() float64 {
	base := m.profile.CPUIdleAwake
	if m.suspended {
		base = m.profile.CPUSuspend
	}
	p := base
	if !m.suspended {
		cpuMW := m.cpuMarginalMW()
		now := m.now()
		for _, uid := range m.liveUIDs {
			i := int(uid - m.cols.base)
			p += m.cols.cpuUtil[i] * cpuMW
			if exp := m.cols.tailExp[i]; exp != 0 && exp.After(now) {
				p += m.profile.WiFiLow
			}
		}
		for ci := range m.holderCount {
			if m.holderCount[ci] > 0 {
				p += m.peripheralPower(Component(ci + 1))
			}
		}
		if m.screenOn {
			p += m.screenPowerNow()
		}
	}
	return p
}

// screenPowerNow folds the dim state into the screen power model.
func (m *Meter) screenPowerNow() float64 {
	p := m.profile.ScreenPower(m.brightness)
	if m.screenDim {
		p = m.profile.ScreenPower(0) + (p-m.profile.ScreenPower(0))*dimFactor
	}
	return p
}

// dimFactor is the fraction of above-base brightness draw kept while the
// display is dimmed.
const dimFactor = 0.3

// InstantScreenPowerMW reports the display's current draw in mW.
func (m *Meter) InstantScreenPowerMW() float64 {
	if m.suspended || !m.screenOn {
		return 0
	}
	return m.screenPowerNow()
}

// InstantSystemPowerMW reports the platform base draw in mW.
func (m *Meter) InstantSystemPowerMW() float64 {
	if m.suspended {
		return m.profile.CPUSuspend
	}
	return m.profile.CPUIdleAwake
}

// InstantAppPowerMW reports the power currently drawn by uid's own
// components (CPU plus peripheral holds, excluding screen), in mW. This
// is the per-app trace a power-signature detector samples; the dense
// state table makes the common case — an app with no live meter state —
// a constant-time zero instead of a walk over every hold map.
func (m *Meter) InstantAppPowerMW(uid app.UID) float64 {
	if m.suspended {
		return 0
	}
	i := m.stateIdx(uid)
	if i < 0 {
		return 0
	}
	var p float64
	if u := m.cols.cpuUtil[i]; u != 0 {
		p = u * m.cpuMarginalMW()
	}
	for mask := m.cols.holdMask[i]; mask != 0; mask &= mask - 1 {
		ci := bits.TrailingZeros8(mask)
		p += m.periphMW[ci] / float64(m.holderCount[ci])
	}
	if exp := m.cols.tailExp[i]; exp != 0 && exp.After(m.now()) {
		p += m.profile.WiFiLow
	}
	return p
}

// AppPowersInto fills dst[j] with the instantaneous own-power draw (in
// mW, as InstantAppPowerMW) of the app occupying slots[j], where slots
// are ascending app slots (see app.Slot). One merge over the sorted
// live-UID cache replaces a per-app query: power-signature samplers
// call this once per tick for the whole census, so apps with no live
// meter state cost one zero store instead of a lookup each.
func (m *Meter) AppPowersInto(slots []int32, dst []float64) {
	for j := range dst {
		dst[j] = 0
	}
	if m.suspended {
		return
	}
	cpuMW := m.cpuMarginalMW()
	now := m.now()
	j := 0
	for _, uid := range m.liveUIDs {
		s := int32(app.Slot(uid))
		for j < len(slots) && slots[j] < s {
			j++
		}
		if j >= len(slots) {
			break
		}
		if slots[j] != s {
			continue
		}
		i := int(uid - m.cols.base)
		var p float64
		if u := m.cols.cpuUtil[i]; u != 0 {
			p = u * cpuMW
		}
		for mask := m.cols.holdMask[i]; mask != 0; mask &= mask - 1 {
			ci := bits.TrailingZeros8(mask)
			p += m.periphMW[ci] / float64(m.holderCount[ci])
		}
		if exp := m.cols.tailExp[i]; exp != 0 && exp.After(now) {
			p += m.profile.WiFiLow
		}
		dst[j] = p
	}
}

// UIDs returns the set of uids with CPU attribution or live holds,
// sorted; useful for diagnostics. (Tail-only uids are excluded, matching
// the historical definition.)
func (m *Meter) UIDs() []app.UID {
	out := make([]app.UID, 0, len(m.liveUIDs))
	for _, uid := range m.liveUIDs {
		i := int(uid - m.cols.base)
		if m.cols.cpuUtil[i] != 0 || m.cols.holdMask[i] != 0 {
			out = append(out, uid)
		}
	}
	return out
}

func mWtoJ(mw, secs float64) float64 { return mw / 1000 * secs }
