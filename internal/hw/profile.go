// Package hw models the smartphone hardware relevant to energy
// accounting: per-component power draw, the battery, and an exact
// piecewise-constant energy integrator (the Meter).
//
// Power is piecewise-constant between framework events, so the Meter can
// integrate energy exactly — no sampling error. This isolates the paper's
// subject (the *attribution* of energy) from measurement noise: any
// difference between Android's view and E-Android's view is purely
// algorithmic.
package hw

import (
	"fmt"
	"time"
)

// Component identifies a power-drawing hardware block.
type Component int

// The hardware components tracked by the meter.
const (
	CPU Component = iota + 1
	Screen
	Camera
	GPS
	WiFi
	Audio
	numComponents = int(Audio)
)

var componentNames = [...]string{
	CPU:    "cpu",
	Screen: "screen",
	Camera: "camera",
	GPS:    "gps",
	WiFi:   "wifi",
	Audio:  "audio",
}

// String returns the component's lowercase name.
func (c Component) String() string {
	if c >= 1 && int(c) <= numComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// Components lists all tracked components in a stable order.
func Components() []Component {
	return []Component{CPU, Screen, Camera, GPS, WiFi, Audio}
}

// Profile holds the power model coefficients, in milliwatts. The values
// are in the range reported by the PowerTutor family of models for
// Nexus-class hardware; the paper's claims depend only on their relative
// magnitudes (screen and camera dominate, suspend is near zero).
type Profile struct {
	// CPUSuspend is total platform draw in deep sleep.
	CPUSuspend float64
	// CPUIdleAwake is platform draw while awake but idle (e.g. a partial
	// wakelock held with no work).
	CPUIdleAwake float64
	// CPUFull is the additional draw of one fully utilized core; an app
	// at utilization u adds u*CPUFull.
	CPUFull float64
	// ScreenBase is screen draw at brightness level 0.
	ScreenBase float64
	// ScreenPerLevel is the additional draw per brightness level (0-255).
	ScreenPerLevel float64
	// CameraOn is camera sensor + ISP draw while capturing.
	CameraOn float64
	// GPSOn is receiver draw while holding a fix.
	GPSOn float64
	// WiFiHigh is the radio's high-power (transmit) state draw.
	WiFiHigh float64
	// WiFiLow is the radio's low-power/tail state draw.
	WiFiLow float64
	// WiFiTail is how long the radio lingers in the low-power state
	// after its last holder releases it. State-machine power models
	// (eprof, AppScope) owe their accuracy edge over pure utilization
	// models to accounting for exactly this kind of tail energy.
	WiFiTail time.Duration
	// AudioOn is the audio DSP draw while playing.
	AudioOn float64
	// CPUFreqs, when non-empty, enables the DVFS CPU model: an
	// ondemand-style governor picks the lowest operating point covering
	// the total utilization, and per-app CPU power scales with that
	// point's cost instead of the linear CPUFull. Empty keeps the linear
	// model.
	CPUFreqs []FreqLevel
}

// Nexus4 returns the default profile, tuned so that the Figure 3
// depletion sweeps land in the paper's 5-15 hour band on an 8.0 Wh
// battery (Nexus 4: 2100 mAh at 3.8 V).
func Nexus4() Profile {
	return Profile{
		CPUSuspend:     6,
		CPUIdleAwake:   120,
		CPUFull:        600,
		ScreenBase:     350,
		ScreenPerLevel: 4.1,
		CameraOn:       1258,
		GPSOn:          429,
		WiFiHigh:       710,
		WiFiLow:        38,
		WiFiTail:       3 * time.Second,
		AudioOn:        384,
	}
}

// Validate rejects physically meaningless profiles.
func (p Profile) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"CPUSuspend", p.CPUSuspend},
		{"CPUIdleAwake", p.CPUIdleAwake},
		{"CPUFull", p.CPUFull},
		{"ScreenBase", p.ScreenBase},
		{"ScreenPerLevel", p.ScreenPerLevel},
		{"CameraOn", p.CameraOn},
		{"GPSOn", p.GPSOn},
		{"WiFiHigh", p.WiFiHigh},
		{"WiFiLow", p.WiFiLow},
		{"AudioOn", p.AudioOn},
	}
	for _, c := range checks {
		if c.v < 0 {
			return fmt.Errorf("hw: profile %s is negative (%v)", c.name, c.v)
		}
	}
	if p.CPUSuspend > p.CPUIdleAwake {
		return fmt.Errorf("hw: suspend draw (%v) exceeds idle-awake draw (%v)",
			p.CPUSuspend, p.CPUIdleAwake)
	}
	if p.WiFiLow > p.WiFiHigh {
		return fmt.Errorf("hw: WiFi low draw (%v) exceeds high draw (%v)",
			p.WiFiLow, p.WiFiHigh)
	}
	if p.WiFiTail < 0 {
		return fmt.Errorf("hw: negative WiFi tail %v", p.WiFiTail)
	}
	return p.validateFreqs()
}

// ScreenPower returns screen draw in mW at the given brightness level,
// clamping the level into [0, 255].
func (p Profile) ScreenPower(brightness int) float64 {
	if brightness < 0 {
		brightness = 0
	}
	if brightness > 255 {
		brightness = 255
	}
	return p.ScreenBase + p.ScreenPerLevel*float64(brightness)
}

// MaxBrightness is the top of Android's 256-level brightness range.
const MaxBrightness = 255

// Battery models a finite energy store.
type Battery struct {
	capacityJ float64
	drainedJ  float64
}

// NexusBatteryJ is the Nexus 4 pack: 2100 mAh * 3.8 V = 7.98 Wh ≈ 28728 J.
const NexusBatteryJ = 2.100 * 3.8 * 3600

// NewBattery returns a full battery with the given capacity in joules.
func NewBattery(capacityJ float64) (*Battery, error) {
	if capacityJ <= 0 {
		return nil, fmt.Errorf("hw: battery capacity must be positive, got %v", capacityJ)
	}
	return &Battery{capacityJ: capacityJ}, nil
}

// Drain removes j joules. Negative drains are rejected; drains past empty
// are clamped to empty.
func (b *Battery) Drain(j float64) error {
	if j < 0 {
		return fmt.Errorf("hw: negative drain %v", j)
	}
	b.drainedJ += j
	if b.drainedJ > b.capacityJ {
		b.drainedJ = b.capacityJ
	}
	return nil
}

// CapacityJ reports the total capacity in joules.
func (b *Battery) CapacityJ() float64 { return b.capacityJ }

// DrainedJ reports cumulative energy drained in joules.
func (b *Battery) DrainedJ() float64 { return b.drainedJ }

// RemainingJ reports the energy left in joules.
func (b *Battery) RemainingJ() float64 { return b.capacityJ - b.drainedJ }

// Percent reports the charge remaining in [0, 100].
func (b *Battery) Percent() float64 {
	return 100 * b.RemainingJ() / b.capacityJ
}

// Dead reports whether the battery is empty.
func (b *Battery) Dead() bool { return b.RemainingJ() <= 0 }
