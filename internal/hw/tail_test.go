package hw

import (
	"math"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/sim"
)

func tailFixture(t *testing.T) (*sim.Engine, *Meter, map[app.UID]float64) {
	t.Helper()
	e := sim.NewEngine(1)
	b, err := NewBattery(NexusBatteryJ)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMeter(e.Now, Nexus4(), b)
	if err != nil {
		t.Fatal(err)
	}
	wifiJ := map[app.UID]float64{}
	m.AddSink(SinkFunc(func(iv Interval) {
		iv.EachApp(func(uid app.UID, u *UsageRow) {
			wifiJ[uid] += u.J(WiFi)
		})
	}))
	return e, m, wifiJ
}

func TestWiFiTailBillsLowPower(t *testing.T) {
	e, m, wifiJ := tailFixture(t)
	p := Nexus4()
	if err := m.Hold(WiFi, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(WiFi, 5); err != nil {
		t.Fatal(err)
	}
	if !m.InWiFiTail(5) {
		t.Fatal("release should enter tail state")
	}
	// Run well past the tail; only WiFiTail seconds of low power accrue.
	if err := e.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if m.InWiFiTail(5) {
		t.Fatal("tail should have expired")
	}
	want := p.WiFiHigh/1000*10 + p.WiFiLow/1000*p.WiFiTail.Seconds()
	if math.Abs(wifiJ[5]-want) > 1e-9 {
		t.Fatalf("wifi energy = %v, want %v", wifiJ[5], want)
	}
}

func TestWiFiTailSplitsIntervalExactly(t *testing.T) {
	// A single long Flush spanning the tail expiry must charge exactly
	// WiFiTail seconds of tail, not the whole span.
	e, m, wifiJ := tailFixture(t)
	p := Nexus4()
	if err := m.Hold(WiFi, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(WiFi, 7); err != nil {
		t.Fatal(err)
	}
	// One uninterrupted hour with no intermediate flushes.
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	want := p.WiFiLow / 1000 * p.WiFiTail.Seconds()
	if math.Abs(wifiJ[7]-want) > 1e-9 {
		t.Fatalf("tail energy = %v, want %v (interval not split)", wifiJ[7], want)
	}
}

func TestWiFiReholdCancelsTail(t *testing.T) {
	e, m, wifiJ := tailFixture(t)
	p := Nexus4()
	if err := m.Hold(WiFi, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(WiFi, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	// Radio goes high again before the tail expires.
	if err := m.Hold(WiFi, 3); err != nil {
		t.Fatal(err)
	}
	if m.InWiFiTail(3) {
		t.Fatal("re-hold should cancel the tail")
	}
	if err := e.RunFor(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	want := p.WiFiLow/1000*1 + p.WiFiHigh/1000*4
	if math.Abs(wifiJ[3]-want) > 1e-9 {
		t.Fatalf("wifi energy = %v, want %v", wifiJ[3], want)
	}
}

func TestSuspendKillsTails(t *testing.T) {
	e, m, wifiJ := tailFixture(t)
	if err := m.Hold(WiFi, 9); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(WiFi, 9); err != nil {
		t.Fatal(err)
	}
	m.SetSuspended(true)
	if m.InWiFiTail(9) {
		t.Fatal("suspend should clear tails")
	}
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if wifiJ[9] != 0 {
		t.Fatalf("suspended tail accrued %v", wifiJ[9])
	}
}

func TestTailVisibleInInstantPower(t *testing.T) {
	_, m, _ := tailFixture(t)
	p := Nexus4()
	base := m.InstantPowerMW()
	if err := m.Hold(WiFi, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(WiFi, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.InstantPowerMW(); math.Abs(got-(base+p.WiFiLow)) > 1e-9 {
		t.Fatalf("instant power = %v, want %v", got, base+p.WiFiLow)
	}
	if got := m.InstantAppPowerMW(1); math.Abs(got-p.WiFiLow) > 1e-9 {
		t.Fatalf("instant app power = %v, want %v", got, p.WiFiLow)
	}
}

func TestZeroTailProfileSkipsTail(t *testing.T) {
	e := sim.NewEngine(1)
	b, _ := NewBattery(NexusBatteryJ)
	prof := Nexus4()
	prof.WiFiTail = 0
	m, err := NewMeter(e.Now, prof, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Hold(WiFi, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(WiFi, 2); err != nil {
		t.Fatal(err)
	}
	if m.InWiFiTail(2) {
		t.Fatal("zero-tail profile should not enter tail state")
	}
}

func TestNegativeTailRejected(t *testing.T) {
	p := Nexus4()
	p.WiFiTail = -time.Second
	if err := p.Validate(); err == nil {
		t.Fatal("negative tail accepted")
	}
}
