package hw

import (
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/sim"
)

// BenchmarkAccrueColumnar costs one integrated accounting second over a
// populated meter — the per-device hot loop the columnar (struct-of-
// arrays) state table exists for: CPU attribution, peripheral hold
// shares and a live WiFi tail, all walked as dense columns.
func BenchmarkAccrueColumnar(b *testing.B) {
	e := sim.NewEngine(1)
	bat, err := NewBattery(1e15)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMeter(e.Now, Nexus4DVFS(), bat)
	if err != nil {
		b.Fatal(err)
	}
	m.AddSink(SinkFunc(func(Interval) {}))
	m.SetScreen(true)
	for i := 0; i < 12; i++ {
		m.SetCPUUtil(app.UID(10001+i), 0.05)
	}
	if err := m.Hold(Camera, 10003); err != nil {
		b.Fatal(err)
	}
	if err := m.Hold(WiFi, 10004); err != nil {
		b.Fatal(err)
	}
	if err := m.Hold(WiFi, 10005); err != nil {
		b.Fatal(err)
	}
	if err := m.Release(WiFi, 10005); err != nil { // leaves a live tail
		b.Fatal(err)
	}
	// Warm the interval table and scratch buffers.
	if err := e.RunFor(sim.Duration(time.Second)); err != nil {
		b.Fatal(err)
	}
	m.Flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.RunFor(sim.Duration(time.Second)); err != nil {
			b.Fatal(err)
		}
		m.Flush()
	}
}
