package hw

import (
	"math"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/sim"
)

func aggFixture(t *testing.T) (*sim.Engine, *Meter, *Aggregator) {
	t.Helper()
	e := sim.NewEngine(1)
	b, err := NewBattery(NexusBatteryJ)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMeter(e.Now, Nexus4(), b)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewAggregator(m)
	if err != nil {
		t.Fatal(err)
	}
	return e, m, g
}

func TestAggregatorSumsCPU(t *testing.T) {
	_, m, g := aggFixture(t)
	k1, k2 := new(int), new(int)
	if err := g.Set(k1, 10, Demand{CPUUtil: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := g.Set(k2, 10, Demand{CPUUtil: 0.2}); err != nil {
		t.Fatal(err)
	}
	if got := m.CPUUtil(10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("meter util = %v, want 0.5", got)
	}
	// Replace k1's demand.
	if err := g.Set(k1, 10, Demand{CPUUtil: 0.1}); err != nil {
		t.Fatal(err)
	}
	if got := m.CPUUtil(10); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("meter util = %v, want 0.3", got)
	}
	if err := g.Clear(k1); err != nil {
		t.Fatal(err)
	}
	if err := g.Clear(k2); err != nil {
		t.Fatal(err)
	}
	if got := m.CPUUtil(10); got != 0 {
		t.Fatalf("meter util = %v, want 0", got)
	}
}

func TestAggregatorClampsAtMeter(t *testing.T) {
	_, m, g := aggFixture(t)
	k1, k2 := new(int), new(int)
	_ = g.Set(k1, 10, Demand{CPUUtil: 0.8})
	_ = g.Set(k2, 10, Demand{CPUUtil: 0.8})
	if got := m.CPUUtil(10); got != 1 {
		t.Fatalf("meter util = %v, want clamp 1", got)
	}
	// Removing one entry must drop the clamped value correctly.
	if err := g.Clear(k2); err != nil {
		t.Fatal(err)
	}
	if got := m.CPUUtil(10); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("meter util = %v, want 0.8", got)
	}
}

func TestAggregatorPeripherals(t *testing.T) {
	_, m, g := aggFixture(t)
	k := new(int)
	if err := g.Set(k, 7, Demand{Camera: true, GPS: true}); err != nil {
		t.Fatal(err)
	}
	if !m.Holding(Camera, 7) || !m.Holding(GPS, 7) {
		t.Fatal("holds not applied")
	}
	if err := g.Set(k, 7, Demand{Camera: true}); err != nil {
		t.Fatal(err)
	}
	if m.Holding(GPS, 7) {
		t.Fatal("gps hold should be released")
	}
	if !m.Holding(Camera, 7) {
		t.Fatal("camera hold should persist")
	}
	if err := g.Clear(k); err != nil {
		t.Fatal(err)
	}
	if m.Holding(Camera, 7) {
		t.Fatal("clear should release camera")
	}
}

func TestAggregatorRejectsUIDMigration(t *testing.T) {
	_, _, g := aggFixture(t)
	k := new(int)
	_ = g.Set(k, 1, Demand{CPUUtil: 0.5})
	if err := g.Set(k, 2, Demand{CPUUtil: 0.5}); err == nil {
		t.Fatal("uid migration accepted")
	}
}

func TestAggregatorNilKey(t *testing.T) {
	_, _, g := aggFixture(t)
	if err := g.Set(nil, 1, Demand{}); err == nil {
		t.Fatal("nil key accepted")
	}
}

func TestAggregatorClearAbsentKeyNoop(t *testing.T) {
	_, _, g := aggFixture(t)
	if err := g.Clear(new(int)); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatorClampsNegativeDemand(t *testing.T) {
	_, m, g := aggFixture(t)
	k := new(int)
	if err := g.Set(k, 3, Demand{CPUUtil: -5}); err != nil {
		t.Fatal(err)
	}
	if m.CPUUtil(3) != 0 {
		t.Fatal("negative demand should clamp to 0")
	}
	if err := g.Set(k, 3, Demand{CPUUtil: 5}); err != nil {
		t.Fatal(err)
	}
	if m.CPUUtil(3) != 1 {
		t.Fatal("overlarge demand should clamp to 1")
	}
}

func TestAggregatorEnergyFlow(t *testing.T) {
	e, m, g := aggFixture(t)
	var cpuJ float64
	m.AddSink(SinkFunc(func(iv Interval) {
		iv.EachApp(func(_ app.UID, u *UsageRow) {
			cpuJ += u.J(CPU)
		})
	}))
	k := new(int)
	_ = g.Set(k, 5, Demand{CPUUtil: 0.5})
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	_ = g.Clear(k)
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	want := 0.5 * Nexus4().CPUFull / 1000 * 10
	if math.Abs(cpuJ-want) > 1e-9 {
		t.Fatalf("cpu energy = %v, want %v", cpuJ, want)
	}
}

func TestNewAggregatorNilMeter(t *testing.T) {
	if _, err := NewAggregator(nil); err == nil {
		t.Fatal("nil meter accepted")
	}
}
