package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestDeriveIsPureAndSpreads(t *testing.T) {
	root := RootID("abc123")
	if root != RootID("abc123") {
		t.Fatal("RootID not pure")
	}
	if RootID("abc123") == RootID("abc124") {
		t.Fatal("distinct seeds collide")
	}
	a, b := Derive(root, 1), Derive(root, 2)
	if a == b || a == root || b == root {
		t.Fatalf("derivation collides: root=%v a=%v b=%v", root, a, b)
	}
	if Derive(root, 1) != a {
		t.Fatal("Derive not pure")
	}
}

func TestSpanIDJSONHex(t *testing.T) {
	id := SpanID(0x0123456789abcdef)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"0123456789abcdef"` {
		t.Fatalf("SpanID JSON = %s", b)
	}
}

func TestSampledPureAndRoughlyProportional(t *testing.T) {
	root := RootID("sample-test")
	n, rate := 6400, 64
	var hits int
	for i := 0; i < n; i++ {
		if Sampled(root, i, rate) {
			hits++
		}
		if Sampled(root, i, rate) != Sampled(root, i, rate) {
			t.Fatal("Sampled not pure")
		}
	}
	// Expect ~100; a 3x band catches derivation bugs without flaking.
	if hits < 33 || hits > 300 {
		t.Fatalf("sampled %d of %d at 1/%d", hits, n, rate)
	}
	if !Sampled(root, 7, 1) {
		t.Fatal("rate 1 must sample everything")
	}
	if Sampled(root, 7, 0) {
		t.Fatal("rate 0 must sample nothing at the Sampled level")
	}
}

// buildTree runs a tiny synthetic operation twice and asserts the
// deterministic tree is identical.
func buildTree() []Span {
	tr := New("deadbeef", "POST /jobs", Config{SampleRate: 1})
	tr.SetJobName("fleet test/cell")
	ft := tr.Fleet(3)
	for i := 0; i < 3; i++ {
		dt := ft.Device(i)
		dt.Phase(PhaseMeterFlush, 0, 1000, 2.5)
		dt.Phase(PhaseWatchdogWindow, 1000, 2000, 0)
		dt.Accrue(hw.Interval{From: 2000, To: 3000, ScreenJ: 1, SystemJ: 2})
		ft.Finish(i, dt, 5000)
	}
	return tr.Spans()
}

func TestSpanTreeDeterministicAndNested(t *testing.T) {
	a, b := buildTree(), buildTree()
	// Wall timestamps are the live side of the determinism split;
	// everything else must be identical run to run.
	stripWall := func(spans []Span) []Span {
		out := append([]Span(nil), spans...)
		for i := range out {
			out[i].WallStart, out[i].WallEnd = 0, 0
		}
		return out
	}
	aj, _ := json.Marshal(stripWall(a))
	bj, _ := json.Marshal(stripWall(b))
	if !bytes.Equal(aj, bj) {
		t.Fatalf("span trees differ:\n%s\n%s", aj, bj)
	}

	byID := map[SpanID]Span{}
	var roots int
	for _, s := range a {
		byID[s.ID] = s
	}
	for _, s := range a {
		if s.Parent == 0 {
			roots++
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %v (%s) has unknown parent %v", s.ID, s.Name, s.Parent)
		}
		if s.Kind == KindPhase || s.Kind == KindDevice {
			if s.Start < p.Start || s.End > p.End {
				t.Fatalf("span %s [%d,%d] escapes parent %s [%d,%d]",
					s.Name, s.Start, s.End, p.Name, p.Start, p.End)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("tree has %d roots, want 1", roots)
	}
	// request → job → 1 shard → 3 devices → 9 phases
	if len(a) != 1+1+1+3+9 {
		t.Fatalf("tree has %d spans, want 15", len(a))
	}
	// Job/request windows roll up to the max device end.
	if a[0].End != 5000 || a[1].End != 5000 {
		t.Fatalf("rollup ends = %d, %d, want 5000", a[0].End, a[1].End)
	}
}

func TestDeviceTracerCapDropsNew(t *testing.T) {
	tr := New("cap", "POST /jobs", Config{SampleRate: 1, MaxSpansPerDevice: 4})
	ft := tr.Fleet(1)
	dt := ft.Device(0)
	for k := 0; k < 10; k++ {
		dt.Phase(PhaseMeterFlush, sim.Time(k), sim.Time(k+1), 0)
	}
	if dt.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", dt.Dropped())
	}
	ft.Finish(0, dt, 10)
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("tracer dropped = %d, want 6", got)
	}
}

func TestNilDeviceTracerIsInert(t *testing.T) {
	var dt *DeviceTracer
	dt.Phase(PhaseMeterFlush, 0, 1, 0) // must not panic
	dt.Accrue(hw.Interval{})
	if dt.Dropped() != 0 {
		t.Fatal("nil tracer dropped != 0")
	}
	var ft *FleetTrace
	if ft.Device(3) != nil {
		t.Fatal("nil fleet trace handed out a device tracer")
	}
	ft.Finish(3, nil, 0)
}

func TestDisabledTracesControlPlaneOnly(t *testing.T) {
	tr := New("off", "POST /jobs", Config{Disabled: true, SampleRate: 1})
	ft := tr.Fleet(2)
	if ft.Device(0) != nil || ft.Device(1) != nil {
		t.Fatal("disabled config sampled a device")
	}
	ft.Finish(0, nil, 100)
	ft.Finish(1, nil, 200)
	spans := tr.Spans()
	if len(spans) != 3 { // request, job, shard-0
		t.Fatalf("disabled tree has %d spans, want 3", len(spans))
	}
	if spans[0].End != 200 {
		t.Fatalf("rollup end = %d, want 200", spans[0].End)
	}
}

func TestWriteChromeParses(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, buildTree()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace does not parse: %v\n%s", err, buf.String())
	}
	var x, meta int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			x++
		case "M":
			meta++
		}
	}
	if x != 15 {
		t.Fatalf("chrome trace has %d X events, want 15", x)
	}
	if meta < 4 { // control plane + 3 devices
		t.Fatalf("chrome trace has %d metadata events, want >= 4", meta)
	}
	// Byte-identical on re-export.
	var buf2 bytes.Buffer
	if err := WriteChrome(&buf2, buildTree()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("chrome export not byte-stable")
	}
}

func TestREDExemplarsAndText(t *testing.T) {
	red := NewRED()
	ex := RootID("job-key")
	red.Observe("POST /jobs", "fleet", 202, 3*time.Millisecond, ex)
	red.Observe("POST /jobs", "fleet", 500, 40*time.Millisecond, 0)
	red.Observe("GET /jobs", "", 200, 100*time.Microsecond, 0)
	var b strings.Builder
	red.WritePrometheus(&b)
	text := b.String()

	for _, want := range []string{
		`eandroid_jobs_requests_total{endpoint="POST /jobs",kind="fleet"} 2`,
		`eandroid_jobs_errors_total{endpoint="POST /jobs",kind="fleet"} 1`,
		`eandroid_jobs_requests_total{endpoint="GET /jobs"} 1`,
		`eandroid_jobs_duration_seconds_count{endpoint="POST /jobs",kind="fleet"} 2`,
		`le="+Inf"`,
		`# {span="` + ex.String() + `"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("RED text missing %q:\n%s", want, text)
		}
	}
	// Stable output.
	var b2 strings.Builder
	red.WritePrometheus(&b2)
	if b2.String() != text {
		t.Fatal("RED text not stable across writes")
	}
}
