// Package trace is the causal span subsystem: every unit of service
// work — an HTTP request, a job, a fleet shard, one device's run, an
// engine phase inside it — carries a parent link, so the cost of a
// request rolls up along one tree, the way eprof's bundles roll energy
// up along call paths.
//
// The subsystem is built around the same determinism split the rest of
// the repo observes. Span IDs are derived from splitmix64 seed chains
// rooted in the job's content address, never from wall time or
// scheduling order, and the exported span tree is assembled in device-
// index order with virtual-ns timestamps only — so the Chrome trace a
// job artifact carries is byte-identical for every workers × shards
// combination, and cacheable under the jobs plane's content addressing.
// Wall-clock timing lives on the other side of the split: lifecycle
// stages (queued, running, artifact-write, cache-hit) are measured in
// wall time and surfaced on the live /trace feed, which — like fleet
// progress — is a live view, not a determinism surface.
//
// Sampling is head-based and pure: whether device i is traced is a
// function of (root ID, i) alone, decided before the device runs.
// Control-plane spans (request, job, shard) are always on; per-device
// span collection defaults to 1 in DefaultSampleRate devices.
package trace

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
)

// SpanID is a 64-bit span identifier, derived — never random — so the
// same operation always yields the same tree. Rendered as 16 hex
// digits in JSON: a uint64 does not survive a float64 JSON number.
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the ID as a quoted hex string.
func (id SpanID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// Span kinds, outermost first.
const (
	KindRequest = "request"
	KindJob     = "job"
	KindShard   = "shard"
	KindDevice  = "device"
	KindPhase   = "phase"
)

// Engine-phase span names.
const (
	// PhaseMeterFlush is one integrated meter interval (a flush).
	PhaseMeterFlush = "meter.flush"
	// PhaseWatchdogWindow is one closed watchdog window.
	PhaseWatchdogWindow = "watchdog.window"
	// PhaseKernelBatch is one same-instant wheel dispatch batch,
	// folded from the telemetry kernel trace log after the run.
	PhaseKernelBatch = "wheel.batch"
)

// Span is one unit of causal work. Start/End are virtual nanoseconds
// (the device's sim clock; control-plane spans roll their windows up
// from their children). WallStart/WallEnd are wall-clock unix
// nanoseconds on structural spans and zero on engine-phase spans; the
// deterministic exporters never write them.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	// Dev is the owning device index; -1 for control-plane spans.
	Dev   int   `json:"dev"`
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
	// N is an optional magnitude: dispatch batch size, window finding
	// count, flush energy.
	N float64 `json:"n,omitempty"`

	WallStart int64 `json:"wall_start_ns,omitempty"`
	WallEnd   int64 `json:"wall_end_ns,omitempty"`
}

// DefaultSampleRate: 1 in 64 devices carry full engine-phase tracing.
const DefaultSampleRate = 64

// DefaultMaxSpansPerDevice bounds one device's span buffer. Overflow
// drops new spans (keeping the run's head), deterministically, and is
// counted — drop-oldest would make "which spans survived" depend on
// the total, which is fine, but drop-new keeps the buffer append-only
// and the retained prefix stable under cap changes at the tail.
const DefaultMaxSpansPerDevice = 16384

// shardBlock mirrors the fleet accumulator's fold-block width: trace
// "shards" are the fixed index blocks, NOT the runtime accumulator
// shards (whose count follows the worker count and would break the
// byte-identity gate). Block b holds devices [b*shardBlock,
// (b+1)*shardBlock).
const shardBlock = 1024

// Config tunes a Tracer.
type Config struct {
	// SampleRate samples 1 in SampleRate devices for engine-phase
	// tracing (1 = every device, 0 = DefaultSampleRate). Control-plane
	// spans are always collected.
	SampleRate int
	// Disabled turns per-device tracing off entirely: Device() returns
	// nil for every index and only control-plane spans are kept.
	Disabled bool
	// MaxSpansPerDevice caps each sampled device's span buffer; 0 means
	// DefaultMaxSpansPerDevice.
	MaxSpansPerDevice int
}

func (c *Config) fill() {
	if c.SampleRate <= 0 {
		c.SampleRate = DefaultSampleRate
	}
	if c.MaxSpansPerDevice <= 0 {
		c.MaxSpansPerDevice = DefaultMaxSpansPerDevice
	}
}

// splitmix64 is the SplitMix64 finalizer — the same derivation the
// fleet uses for per-device seeds, reused here so span identity and
// random streams hang off one chain discipline.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// golden is the 64-bit golden-ratio increment used to spread child
// indexes before finalizing.
const golden = 0x9e3779b97f4a7c15

// Derive chains child index's span ID off parent. Pure: the tree's
// shape alone fixes every ID.
func Derive(parent SpanID, index uint64) SpanID {
	return SpanID(splitmix64(uint64(parent) + index*golden))
}

// RootID derives an operation's root span ID from its seed string
// (the jobs plane passes the spec's content address).
func RootID(seed string) SpanID {
	h := fnv.New64a()
	_, _ = h.Write([]byte("trace/v1|"))
	_, _ = h.Write([]byte(seed))
	return SpanID(splitmix64(h.Sum64()))
}

// sampleSalt separates the sampling decision chain from the span-ID
// chain, so which devices are sampled is uncorrelated with their IDs.
const sampleSalt = 0x5ca1ab1e

// Sampled reports whether device i is head-sampled under root at
// 1-in-rate. Pure, so any layer can re-derive the decision.
func Sampled(root SpanID, i, rate int) bool {
	if rate <= 1 {
		return rate == 1
	}
	return uint64(Derive(Derive(root, sampleSalt), uint64(i)))%uint64(rate) == 0
}

// Stage is one wall-clock lifecycle stage of a traced operation
// (queued, running, artifact-write, cache-hit). Stages live on the
// live side of the determinism split: they never enter artifacts.
type Stage struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
}

// Tracer collects one traced operation's spans: the request root, the
// job span beneath it, and — once Fleet() threads it through a fleet
// run — shard and device subtrees. Control-plane methods are
// goroutine-safe; DeviceTracers are single-goroutine like the engines
// they observe.
type Tracer struct {
	cfg     Config
	root    SpanID
	rootNm  string
	jobID   SpanID
	jobNm   string
	wall0   int64 // wall-clock unix ns at New
	horizon int64 // virtual window for fleet-less operations

	mu     sync.Mutex
	stages []Stage
	fleet  *FleetTrace
	wall1  int64
}

// New builds a tracer for one operation. seed is the determinism root
// (the job's content address); rootName names the request span.
func New(seed, rootName string, cfg Config) *Tracer {
	cfg.fill()
	root := RootID(seed)
	return &Tracer{
		cfg:    cfg,
		root:   root,
		rootNm: rootName,
		jobID:  Derive(root, 1),
		wall0:  time.Now().UnixNano(),
	}
}

// Root returns the request span's ID (the exemplar the RED histograms
// attach to). Nil-safe: an untraced operation reports span 0.
func (t *Tracer) Root() SpanID {
	if t == nil {
		return 0
	}
	return t.root
}

// SetJobName names the job span ("fleet gamer/none"); call before
// Spans.
func (t *Tracer) SetJobName(name string) {
	t.mu.Lock()
	t.jobNm = name
	t.mu.Unlock()
}

// SetHorizon gives fleet-less operations (corpus jobs) a virtual
// window for the request/job spans.
func (t *Tracer) SetHorizon(d time.Duration) {
	t.mu.Lock()
	t.horizon = int64(d)
	t.mu.Unlock()
}

// AddStage appends one wall-clock lifecycle stage.
func (t *Tracer) AddStage(name string, d time.Duration) {
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, WallMS: float64(d.Microseconds()) / 1000})
	t.mu.Unlock()
}

// Fleet threads the tracer through one fleet run of n devices and
// returns the handle for fleet.Spec.Trace. One fleet per tracer.
func (t *Tracer) Fleet(n int) *FleetTrace {
	ft := &FleetTrace{
		t:    t,
		n:    n,
		ends: make([]int64, n),
		devs: make(map[int]*DeviceTracer),
	}
	t.mu.Lock()
	t.fleet = ft
	t.mu.Unlock()
	return ft
}

// Finish stamps the operation's wall end. Idempotent enough: last
// call wins.
func (t *Tracer) Finish() {
	t.mu.Lock()
	t.wall1 = time.Now().UnixNano()
	t.mu.Unlock()
}

// Spans assembles the deterministic span tree: request → job → shards
// (fixed index blocks) → sampled devices → engine phases, in index
// order, with control-plane windows rolled up from every device's
// virtual end (sampled or not). The result is a pure function of the
// operation's seed, shape and per-device virtual behaviour — wall
// time, worker count and scheduling never enter.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()

	jobName := t.jobNm
	if jobName == "" {
		jobName = "job"
	}
	out := make([]Span, 0, t.spanCountLocked())
	// Placeholders; windows are rolled up below.
	out = append(out,
		Span{ID: t.root, Kind: KindRequest, Name: t.rootNm, Dev: -1, End: t.horizon},
		Span{ID: t.jobID, Parent: t.root, Kind: KindJob, Name: jobName, Dev: -1, End: t.horizon},
	)
	if ft := t.fleet; ft != nil {
		nb := (ft.n + shardBlock - 1) / shardBlock
		var jobEnd int64
		for b := 0; b < nb; b++ {
			shardID := Derive(t.jobID, uint64(b))
			lo, hi := b*shardBlock, min((b+1)*shardBlock, ft.n)
			var end int64
			for i := lo; i < hi; i++ {
				if e := ft.ends[i]; e > end {
					end = e
				}
			}
			if end > jobEnd {
				jobEnd = end
			}
			out = append(out, Span{
				ID: shardID, Parent: t.jobID, Kind: KindShard,
				Name: fmt.Sprintf("shard-%d", b), Dev: -1, End: end,
				N: float64(hi - lo),
			})
		}
		out[0].End, out[1].End = jobEnd, jobEnd
		for i := 0; i < ft.n; i++ {
			dt := ft.devs[i]
			if dt == nil {
				continue
			}
			out = append(out, dt.span)
			out = dt.appendMerged(out)
		}
	}
	// Wall endpoints on the structural request span only — exporters
	// that must stay deterministic strip them (see WriteChrome).
	out[0].WallStart, out[0].WallEnd = t.wall0, t.wall1
	return out
}

// SpanCount reports the size of the deterministic tree without
// assembling it — Spans() materializes ~100 bytes per span, which the
// live feed's per-publish summaries and the overhead study's counters
// have no use for.
func (t *Tracer) SpanCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spanCountLocked()
}

func (t *Tracer) spanCountLocked() int {
	total := 2
	if ft := t.fleet; ft != nil {
		total += (ft.n + shardBlock - 1) / shardBlock
		for _, dt := range ft.devs {
			total += 1 + dt.count
		}
	}
	return total
}

// Dropped sums span-buffer overflow across sampled devices.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fleet == nil {
		return 0
	}
	var n uint64
	for _, dt := range t.fleet.devs {
		n += dt.dropped
	}
	return n
}

// Summary is the live /trace view of one finished operation: wall-
// clock lifecycle stages plus deterministic tree counts. This is the
// wall side of the determinism split — it never enters artifacts.
type Summary struct {
	Root   SpanID `json:"root"`
	Name   string `json:"name"`
	JobID  string `json:"job_id,omitempty"`
	Key    string `json:"key,omitempty"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	// Spans counts the deterministic tree; Devices the fleet size;
	// Sampled how many devices carried engine-phase tracing.
	Spans   int     `json:"spans"`
	Devices int     `json:"devices"`
	Sampled int     `json:"sampled"`
	Dropped uint64  `json:"dropped_spans,omitempty"`
	WallMS  float64 `json:"wall_ms"`
	Stages  []Stage `json:"stages,omitempty"`
}

// Summarize freezes the tracer into a live Summary.
func (t *Tracer) Summarize(state string) *Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Summary{
		Root:    t.root,
		Name:    t.rootNm,
		State:   state,
		Spans:   t.spanCountLocked(),
		Stages:  append([]Stage(nil), t.stages...),
		Dropped: 0,
	}
	if t.fleet != nil {
		s.Devices = t.fleet.n
		for _, dt := range t.fleet.devs {
			s.Sampled++
			s.Dropped += dt.dropped
		}
	}
	if t.wall1 > t.wall0 {
		s.WallMS = float64(t.wall1-t.wall0) / 1e6
	}
	return s
}

// FleetTrace is the tracer's fleet-side handle: it hands a sampled
// DeviceTracer to each worker and collects the finished buffers.
type FleetTrace struct {
	t *Tracer
	n int

	// ends[i] is device i's final virtual ns — written once per device
	// from the worker that ran it (disjoint indexes, no lock), read
	// only after the pool joins.
	ends []int64

	mu   sync.Mutex
	devs map[int]*DeviceTracer
}

// Device returns device i's tracer, or nil when i is unsampled (the
// common case — callers nil-check, and a nil DeviceTracer is inert).
func (ft *FleetTrace) Device(i int) *DeviceTracer {
	if ft == nil || ft.t.cfg.Disabled || !Sampled(ft.t.root, i, ft.t.cfg.SampleRate) {
		return nil
	}
	shardID := Derive(ft.t.jobID, uint64(i/shardBlock))
	id := Derive(shardID, uint64(i))
	return &DeviceTracer{
		id:  id,
		max: ft.t.cfg.MaxSpansPerDevice,
		span: Span{
			ID: id, Parent: shardID, Kind: KindDevice,
			Name: fmt.Sprintf("device-%d", i), Dev: i,
			WallStart: time.Now().UnixNano(),
		},
	}
}

// Finish records device i's final virtual instant and, when dt is
// non-nil, closes its device span and files the buffer. Called once
// per device from the worker goroutine that ran it.
func (ft *FleetTrace) Finish(i int, dt *DeviceTracer, end sim.Time) {
	if ft == nil {
		return
	}
	ft.ends[i] = int64(end)
	if dt == nil {
		return
	}
	dt.span.End = int64(end)
	dt.span.WallEnd = time.Now().UnixNano()
	ft.mu.Lock()
	ft.devs[i] = dt
	ft.mu.Unlock()
}

// DeviceTracer collects one sampled device's engine-phase spans.
// Single-goroutine, like the engine; methods are nil-safe so call
// sites on unsampled devices pay one branch.
//
// The record path is the tracer's hot loop — a fully traced device
// appends thousands of phases — so it stores compact 32-byte records
// bucketed into one run per phase name, not full Spans: the parent,
// kind, device index and name are the same for every record in a run,
// and the span ID re-derives from the stored sequence number whenever
// the tree is assembled. Every producer the engine hooks up — meter
// flushes, watchdog windows, the post-run kernel-batch fold — emits
// its stream in virtual-time order, so each run stays sorted as it
// grows and assembly is an O(n) k-way merge, never a sort, of the
// interleaved whole (which is far from sorted: watchdog windows open
// long before the meter flushes they land between, and the kernel
// fold appends a whole trailing run).
type DeviceTracer struct {
	id      SpanID
	span    Span // the structural device span
	next    uint64
	runs    []phaseRun
	count   int
	max     int
	dropped uint64
}

// phaseRec is one phase occurrence: its position in the device's
// append sequence (the ID derivation index) and the virtual window.
type phaseRec struct {
	seq        uint64
	start, end int64
	n          float64
}

// phaseRun is one phase name's record stream. sorted tracks whether
// the producer kept virtual-start order; a run that didn't demotes
// assembly to a real sort.
type phaseRun struct {
	name   string
	recs   []phaseRec
	sorted bool
}

// run returns (creating on first use) the run for a phase name. The
// scan is over at most a handful of names, and the compares are
// pointer-equal for the package's own phase constants.
func (d *DeviceTracer) run(name string) *phaseRun {
	for i := range d.runs {
		if d.runs[i].name == name {
			return &d.runs[i]
		}
	}
	d.runs = append(d.runs, phaseRun{name: name, sorted: true})
	return &d.runs[len(d.runs)-1]
}

// Phase appends one completed engine-phase span [start, end]. Over
// the buffer cap it counts a drop instead (the head of the run is
// retained; see DefaultMaxSpansPerDevice).
func (d *DeviceTracer) Phase(name string, start, end sim.Time, n float64) {
	if d == nil {
		return
	}
	if d.count >= d.max {
		d.dropped++
		return
	}
	r := d.run(name)
	if k := len(r.recs); k > 0 && int64(start) < r.recs[k-1].start {
		r.sorted = false
	}
	r.recs = append(r.recs, phaseRec{seq: d.next, start: int64(start), end: int64(end), n: n})
	d.next++
	d.count++
}

// spanAt materializes run r's record k as a full Span.
func (d *DeviceTracer) spanAt(r *phaseRun, k int) Span {
	rec := &r.recs[k]
	return Span{
		ID: Derive(d.id, rec.seq), Parent: d.id, Kind: KindPhase,
		Name: r.name, Dev: d.span.Dev,
		Start: rec.start, End: rec.end, N: rec.n,
	}
}

// appendMerged appends the device's phase spans to out in virtual-
// time order. With every run sorted (the always case for the engine's
// own producers) this is a k-way merge over k = len(runs) streams —
// O(n) with direct comparisons on the compact records. A producer
// that broke order demotes the device to a real sort; either way the
// result is a pure function of the append sequence, so the
// byte-identity gate holds.
func (d *DeviceTracer) appendMerged(out []Span) []Span {
	allSorted := true
	for i := range d.runs {
		allSorted = allSorted && d.runs[i].sorted
	}
	if !allSorted {
		base := len(out)
		for i := range d.runs {
			for k := range d.runs[i].recs {
				out = append(out, d.spanAt(&d.runs[i], k))
			}
		}
		seg := out[base:]
		sort.Slice(seg, func(i, j int) bool { return less(&seg[i], &seg[j]) })
		return out
	}
	var heads [8]int
	if len(d.runs) > len(heads) {
		// More distinct phase names than the fixed head array — not a
		// case any current producer creates; fall back to allocating.
		return d.appendMergedWide(out)
	}
	for n := 0; n < d.count; n++ {
		best := -1
		for i := range d.runs {
			if heads[i] >= len(d.runs[i].recs) {
				continue
			}
			if best < 0 || recLess(&d.runs[i].recs[heads[i]], &d.runs[best].recs[heads[best]], d) {
				best = i
			}
		}
		out = append(out, d.spanAt(&d.runs[best], heads[best]))
		heads[best]++
	}
	return out
}

// appendMergedWide is appendMerged's merge loop with a heap-allocated
// head array, for tracers with more phase names than the fixed array.
func (d *DeviceTracer) appendMergedWide(out []Span) []Span {
	heads := make([]int, len(d.runs))
	for n := 0; n < d.count; n++ {
		best := -1
		for i := range d.runs {
			if heads[i] >= len(d.runs[i].recs) {
				continue
			}
			if best < 0 || recLess(&d.runs[i].recs[heads[i]], &d.runs[best].recs[heads[best]], d) {
				best = i
			}
		}
		out = append(out, d.spanAt(&d.runs[best], heads[best]))
		heads[best]++
	}
	return out
}

// recLess is the merge order on compact records: virtual start, then
// derived span ID — the same total order less() gives full Spans.
func recLess(a, b *phaseRec, d *DeviceTracer) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	return Derive(d.id, a.seq) < Derive(d.id, b.seq)
}

// Accrue implements hw.Sink: every integrated meter interval becomes
// one meter-flush phase span. The interval's per-app table is
// borrowed storage, but only the endpoints and totals are read here —
// nothing is retained.
func (d *DeviceTracer) Accrue(iv hw.Interval) {
	d.Phase(PhaseMeterFlush, iv.From, iv.To, iv.ScreenJ+iv.SystemJ)
}

// Dropped reports spans discarded over the buffer cap.
func (d *DeviceTracer) Dropped() uint64 {
	if d == nil {
		return 0
	}
	return d.dropped
}

// less is the merge/sort order: virtual start, then ID. Total —
// span IDs are unique — so every ordering built on it is
// deterministic.
func less(a, b *Span) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.ID < b.ID
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
