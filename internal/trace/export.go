// Chrome trace-event export. The writer is byte-deterministic: spans
// arrive from Tracer.Spans() in a fixed order, timestamps are virtual
// microseconds only (wall endpoints are stripped), and every event is
// marshalled with encoding/json's stable field order. chrome://tracing
// and Perfetto both open the result.
package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// chromeEvent is one trace-event line. "X" complete events carry ts +
// dur; "M" metadata events name processes and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Thread lanes within a device process, one per phase kind so the
// lanes don't overlap (phases of one kind never nest).
const (
	laneStructural = 0
	laneMeter      = 1
	laneWatchdog   = 2
	laneWheel      = 3
)

func lane(name string) int {
	switch name {
	case PhaseMeterFlush:
		return laneMeter
	case PhaseWatchdogWindow:
		return laneWatchdog
	case PhaseKernelBatch:
		return laneWheel
	}
	return laneStructural
}

// WriteChrome writes spans as a Chrome trace JSON array. Process 0 is
// the control plane (request/job/shard lanes); process i+1 is device
// i, with one thread lane per phase kind. Timestamps and durations are
// virtual microseconds.
func WriteChrome(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	emit := func(ev chromeEvent, first bool) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	if err := emit(chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "control-plane"},
	}, true); err != nil {
		return err
	}
	// Control-plane thread lanes by span kind.
	ctlTid := map[string]int{KindRequest: 0, KindJob: 1, KindShard: 2}
	named := map[int]bool{}
	for _, s := range spans {
		pid, tid := 0, 0
		switch s.Kind {
		case KindDevice, KindPhase:
			pid = s.Dev + 1
			if s.Kind == KindPhase {
				tid = lane(s.Name)
			}
			if !named[pid] {
				named[pid] = true
				if err := emit(chromeEvent{
					Name: "process_name", Ph: "M", Pid: pid,
					Args: map[string]any{"name": s.Name},
				}, false); err != nil {
					return err
				}
			}
		default:
			tid = ctlTid[s.Kind]
		}
		ev := chromeEvent{
			Name: s.Name, Ph: "X", Pid: pid, Tid: tid,
			Ts:  float64(s.Start) / 1e3,
			Dur: float64(s.End-s.Start) / 1e3,
			Args: map[string]any{
				"id":     s.ID.String(),
				"parent": s.Parent.String(),
				"kind":   s.Kind,
			},
		}
		if s.N != 0 {
			ev.Args["n"] = s.N
		}
		if err := emit(ev, false); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
