// RED metrics (rate, errors, duration) for the jobs API, derived from
// the same span stream the tracer feeds: each observation carries the
// request's root span ID, which sticks to the histogram bucket it
// lands in as an exemplar — so a slow bucket on /metrics links to a
// concrete trace.
//
// The telemetry snapshot writer has no label support, so RED renders
// its own Prometheus text; the obsv server appends it after the merged
// snapshot (Server.AddTextSource).
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// redBuckets are the duration histogram bounds in seconds, the usual
// latency ladder.
var redBuckets = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// redSeries is one (endpoint, kind, status-class) histogram.
type redSeries struct {
	count    uint64
	errors   uint64
	sum      float64
	buckets  []uint64 // len(redBuckets)+1, last is +Inf
	exemplar []SpanID // per finite bucket: last span that landed there
}

// RED aggregates request observations per (endpoint, job kind).
type RED struct {
	mu     sync.Mutex
	series map[string]*redSeries // key: endpoint "\x00" kind
}

// NewRED returns an empty collector.
func NewRED() *RED { return &RED{series: make(map[string]*redSeries)} }

// Observe records one request: endpoint pattern, job kind ("" when
// not job-scoped), HTTP status, duration, and the root span ID as the
// bucket exemplar (zero when the request had no trace).
func (r *RED) Observe(endpoint, kind string, status int, d time.Duration, ex SpanID) {
	if r == nil {
		return
	}
	key := endpoint + "\x00" + kind
	sec := d.Seconds()
	r.mu.Lock()
	s := r.series[key]
	if s == nil {
		s = &redSeries{
			buckets:  make([]uint64, len(redBuckets)+1),
			exemplar: make([]SpanID, len(redBuckets)),
		}
		r.series[key] = s
	}
	s.count++
	s.sum += sec
	if status >= 500 {
		s.errors++
	}
	b := sort.SearchFloat64s(redBuckets, sec)
	s.buckets[b]++
	if b < len(redBuckets) && ex != 0 {
		s.exemplar[b] = ex
	}
	r.mu.Unlock()
}

// WritePrometheus renders the collector as Prometheus text with
// OpenMetrics-style exemplars ("# {span=...} value") on histogram
// bucket samples. Series are sorted for stable output.
func (r *RED) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	keys := make([]string, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		endpoint, kind string
		s              redSeries
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		src := r.series[k]
		cp := redSeries{
			count: src.count, errors: src.errors, sum: src.sum,
			buckets:  append([]uint64(nil), src.buckets...),
			exemplar: append([]SpanID(nil), src.exemplar...),
		}
		sep := 0
		for i := range k {
			if k[i] == 0 {
				sep = i
				break
			}
		}
		rows = append(rows, row{endpoint: k[:sep], kind: k[sep+1:], s: cp})
	}
	r.mu.Unlock()
	if len(rows) == 0 {
		return
	}

	fmt.Fprintf(w, "# HELP eandroid_jobs_requests_total Jobs API requests by endpoint and job kind.\n")
	fmt.Fprintf(w, "# TYPE eandroid_jobs_requests_total counter\n")
	for _, rw := range rows {
		fmt.Fprintf(w, "eandroid_jobs_requests_total{%s} %d\n", labels(rw.endpoint, rw.kind, ""), rw.s.count)
	}
	fmt.Fprintf(w, "# HELP eandroid_jobs_errors_total Jobs API 5xx responses by endpoint and job kind.\n")
	fmt.Fprintf(w, "# TYPE eandroid_jobs_errors_total counter\n")
	for _, rw := range rows {
		fmt.Fprintf(w, "eandroid_jobs_errors_total{%s} %d\n", labels(rw.endpoint, rw.kind, ""), rw.s.errors)
	}
	fmt.Fprintf(w, "# HELP eandroid_jobs_duration_seconds Jobs API request duration by endpoint and job kind.\n")
	fmt.Fprintf(w, "# TYPE eandroid_jobs_duration_seconds histogram\n")
	for _, rw := range rows {
		var cum uint64
		for i, le := range redBuckets {
			cum += rw.s.buckets[i]
			fmt.Fprintf(w, "eandroid_jobs_duration_seconds_bucket{%s} %d",
				labels(rw.endpoint, rw.kind, fmtLe(le)), cum)
			if ex := rw.s.exemplar[i]; ex != 0 {
				fmt.Fprintf(w, " # {span=%q} %d", ex.String(), 1)
			}
			fmt.Fprintf(w, "\n")
		}
		cum += rw.s.buckets[len(redBuckets)]
		fmt.Fprintf(w, "eandroid_jobs_duration_seconds_bucket{%s} %d\n",
			labels(rw.endpoint, rw.kind, "+Inf"), cum)
		fmt.Fprintf(w, "eandroid_jobs_duration_seconds_sum{%s} %g\n", labels(rw.endpoint, rw.kind, ""), rw.s.sum)
		fmt.Fprintf(w, "eandroid_jobs_duration_seconds_count{%s} %d\n", labels(rw.endpoint, rw.kind, ""), rw.s.count)
	}
}

func labels(endpoint, kind, le string) string {
	s := fmt.Sprintf("endpoint=%q", endpoint)
	if kind != "" {
		s += fmt.Sprintf(",kind=%q", kind)
	}
	if le != "" {
		s += fmt.Sprintf(",le=%q", le)
	}
	return s
}

// fmtLe renders bucket bounds without exponent noise (0.001, not
// 1e-03) so the text is stable and grep-friendly.
func fmtLe(v float64) string { return fmt.Sprintf("%g", v) }
