// Package power reimplements the Android power manager semantics the
// paper's attacks depend on: the four wakelock types, acquire/release
// with Binder link-to-death auto-release, the screen auto-off timeout,
// and the aggressive suspend policy that puts the platform into deep
// sleep once nothing holds it awake.
package power

import (
	"fmt"
	"sort"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/manifest"
	"repro/internal/sim"
)

// WakelockType enumerates Android's four wakelock levels.
type WakelockType int

// The four wakelock types. Three of the four keep the screen on.
const (
	// Partial keeps the CPU awake; screen may turn off.
	Partial WakelockType = iota + 1
	// ScreenDim keeps the screen on (dim allowed).
	ScreenDim
	// ScreenBright keeps the screen on at full brightness.
	ScreenBright
	// Full keeps screen, keyboard backlight and CPU on.
	Full
)

var wakelockNames = map[WakelockType]string{
	Partial:      "PARTIAL_WAKE_LOCK",
	ScreenDim:    "SCREEN_DIM_WAKE_LOCK",
	ScreenBright: "SCREEN_BRIGHT_WAKE_LOCK",
	Full:         "FULL_WAKE_LOCK",
}

// String returns the Android constant name for the type.
func (w WakelockType) String() string {
	if s, ok := wakelockNames[w]; ok {
		return s
	}
	return fmt.Sprintf("WakelockType(%d)", int(w))
}

// KeepsScreenOn reports whether the wakelock type forces the display on.
func (w WakelockType) KeepsScreenOn() bool {
	return w == ScreenDim || w == ScreenBright || w == Full
}

// ReleaseCause records why a wakelock was released.
type ReleaseCause int

// Release causes.
const (
	// ReleasedExplicit is a normal release() call by the owner.
	ReleasedExplicit ReleaseCause = iota + 1
	// ReleasedLinkToDeath is the kernel Binder driver releasing the lock
	// because the owning process died.
	ReleasedLinkToDeath
)

func (c ReleaseCause) String() string {
	switch c {
	case ReleasedExplicit:
		return "explicit"
	case ReleasedLinkToDeath:
		return "link-to-death"
	}
	return fmt.Sprintf("ReleaseCause(%d)", int(c))
}

// ScreenCause records why the screen changed state.
type ScreenCause int

// Screen state-change causes.
const (
	// ScreenUserActivity is a user touch/power-button wake.
	ScreenUserActivity ScreenCause = iota + 1
	// ScreenTimeout is the auto-off idle timeout.
	ScreenTimeout
	// ScreenWakelock is a screen-type wakelock forcing the display on.
	ScreenWakelock
)

func (c ScreenCause) String() string {
	switch c {
	case ScreenUserActivity:
		return "user-activity"
	case ScreenTimeout:
		return "timeout"
	case ScreenWakelock:
		return "wakelock"
	}
	return fmt.Sprintf("ScreenCause(%d)", int(c))
}

// Wakelock is a held (or released) wakelock registration.
type Wakelock struct {
	Owner app.UID
	Type  WakelockType
	Tag   string

	held bool
	mgr  *Manager
}

// Held reports whether the lock is still held.
func (w *Wakelock) Held() bool { return w.held }

// Release drops the lock. Releasing twice is an error, matching Android's
// RuntimeException on over-release.
func (w *Wakelock) Release() error {
	if !w.held {
		return fmt.Errorf("power: wakelock %q released while not held", w.Tag)
	}
	w.mgr.release(w, ReleasedExplicit)
	return nil
}

// Hooks receive power manager events. E-Android's monitor implements
// this; a no-op default keeps stock Android behaviour.
type Hooks interface {
	WakelockAcquired(t sim.Time, wl *Wakelock)
	WakelockReleased(t sim.Time, wl *Wakelock, cause ReleaseCause)
	ScreenChanged(t sim.Time, on bool, cause ScreenCause)
}

// Manager is the simulated PowerManagerService.
type Manager struct {
	engine *sim.Engine
	meter  *hw.Meter
	pm     *app.PackageManager
	hooks  []Hooks

	locks map[*Wakelock]struct{}

	screenOn      bool
	screenTimeout sim.Duration
	timeoutEvent  sim.Handle

	lastUser sim.Time
}

// DefaultScreenTimeout mirrors the 30 s auto-off the paper's experiments
// use.
const DefaultScreenTimeout = 30 * sim.Duration(sim.Second)

// NewManager builds a power manager. The device starts awake with the
// screen on (just unlocked) and the timeout armed.
func NewManager(engine *sim.Engine, meter *hw.Meter, pm *app.PackageManager) (*Manager, error) {
	if engine == nil || meter == nil || pm == nil {
		return nil, fmt.Errorf("power: nil dependency")
	}
	m := &Manager{
		engine:        engine,
		meter:         meter,
		pm:            pm,
		locks:         make(map[*Wakelock]struct{}),
		screenTimeout: DefaultScreenTimeout,
	}
	m.setScreen(true, ScreenUserActivity)
	m.lastUser = engine.Now()
	return m, nil
}

// AddHooks registers an event consumer.
func (m *Manager) AddHooks(h Hooks) { m.hooks = append(m.hooks, h) }

// SetScreenTimeout changes the auto-off idle timeout and re-arms it.
func (m *Manager) SetScreenTimeout(d sim.Duration) error {
	if d <= 0 {
		return fmt.Errorf("power: non-positive screen timeout %v", d)
	}
	m.screenTimeout = d
	if m.screenOn {
		m.armTimeout()
	}
	return nil
}

// ScreenOn reports whether the display is lit.
func (m *Manager) ScreenOn() bool { return m.screenOn }

// Acquire takes a wakelock for the app with the given uid. It enforces
// the WAKE_LOCK permission for non-system apps and links the lock to the
// owner's process death, exactly as PowerManagerService registers a
// death token with the Binder driver.
func (m *Manager) Acquire(uid app.UID, typ WakelockType, tag string) (*Wakelock, error) {
	if _, ok := wakelockNames[typ]; !ok {
		return nil, fmt.Errorf("power: invalid wakelock type %d", int(typ))
	}
	owner := m.pm.ByUID(uid)
	if owner == nil {
		return nil, fmt.Errorf("power: unknown uid %d", uid)
	}
	if !owner.System && !owner.Manifest.HasPermission(manifest.PermWakeLock) {
		return nil, fmt.Errorf("power: %s lacks %s", owner.Package(), manifest.PermWakeLock)
	}
	if !owner.Alive() {
		return nil, fmt.Errorf("power: %s process is dead", owner.Package())
	}
	wl := &Wakelock{Owner: uid, Type: typ, Tag: tag, held: true, mgr: m}
	m.locks[wl] = struct{}{}
	owner.LinkToDeath(func() {
		if wl.held {
			m.release(wl, ReleasedLinkToDeath)
		}
	})

	// Any wakelock wakes the platform from suspend.
	m.meter.SetSuspended(false)
	if typ.KeepsScreenOn() && !m.screenOn {
		m.setScreen(true, ScreenWakelock)
	}
	// A bright or full lock forces the display out of the dim state.
	if typ == ScreenBright || typ == Full {
		m.meter.SetScreenDim(false)
	}
	for _, h := range m.hooks {
		h.WakelockAcquired(m.engine.Now(), wl)
	}
	return wl, nil
}

func (m *Manager) release(wl *Wakelock, cause ReleaseCause) {
	wl.held = false
	delete(m.locks, wl)
	for _, h := range m.hooks {
		h.WakelockReleased(m.engine.Now(), wl, cause)
	}
	m.reevaluate()
}

// HeldBy returns the live wakelocks owned by uid, sorted by tag.
func (m *Manager) HeldBy(uid app.UID) []*Wakelock {
	var out []*Wakelock
	for wl := range m.locks {
		if wl.Owner == uid {
			out = append(out, wl)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// AnyScreenLock reports whether any held wakelock forces the screen on.
func (m *Manager) AnyScreenLock() bool {
	for wl := range m.locks {
		if wl.Type.KeepsScreenOn() {
			return true
		}
	}
	return false
}

// onlyDimLocks reports whether the screen is held exclusively by
// SCREEN_DIM wakelocks (so the display may dim at timeout).
func (m *Manager) onlyDimLocks() bool {
	any := false
	for wl := range m.locks {
		if !wl.Type.KeepsScreenOn() {
			continue
		}
		if wl.Type != ScreenDim {
			return false
		}
		any = true
	}
	return any
}

// AnyLock reports whether any wakelock at all is held.
func (m *Manager) AnyLock() bool { return len(m.locks) > 0 }

// LastUserActivity returns the virtual instant of the most recent user
// touch (device construction counts as the unlocking touch). Energy
// anomaly detectors use it to separate drain the user's own interaction
// explains from drain sustained while the device sits untouched.
func (m *Manager) LastUserActivity() sim.Time { return m.lastUser }

// UserActivity simulates a user touch: wakes the device, lights (and
// undims) the screen and resets the idle timeout.
func (m *Manager) UserActivity() {
	m.lastUser = m.engine.Now()
	m.meter.SetSuspended(false)
	m.meter.SetScreenDim(false)
	if !m.screenOn {
		m.setScreen(true, ScreenUserActivity)
	} else {
		m.armTimeout()
	}
}

func (m *Manager) setScreen(on bool, cause ScreenCause) {
	m.screenOn = on
	m.meter.SetScreen(on)
	if on {
		m.meter.SetSuspended(false)
		m.armTimeout()
	} else {
		m.disarmTimeout()
	}
	for _, h := range m.hooks {
		h.ScreenChanged(m.engine.Now(), on, cause)
	}
	if !on {
		m.reevaluate()
	}
}

func (m *Manager) armTimeout() {
	m.disarmTimeout()
	m.timeoutEvent = m.engine.After(m.screenTimeout, "power.screen-timeout", func() {
		m.timeoutEvent = sim.Handle{}
		if m.AnyScreenLock() {
			// A screen wakelock holds the display on — but if only dim
			// locks remain, the display drops to its dim state (the
			// SCREEN_DIM_WAKE_LOCK contract). Check again later.
			if m.onlyDimLocks() {
				m.meter.SetScreenDim(true)
			}
			m.armTimeout()
			return
		}
		if m.screenOn {
			m.setScreen(false, ScreenTimeout)
		}
	})
}

func (m *Manager) disarmTimeout() {
	m.timeoutEvent.Cancel() // no-op on the zero Handle or a fired event
	m.timeoutEvent = sim.Handle{}
}

// reevaluate applies Android's aggressive sleep policy: with the screen
// off and no wakelocks of any kind, the platform suspends.
func (m *Manager) reevaluate() {
	if !m.screenOn && !m.AnyLock() {
		m.meter.SetSuspended(true)
	}
}
