package power

import (
	"strings"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/manifest"
	"repro/internal/sim"
)

type recorder struct {
	acquired []string
	released []string
	screen   []string
}

func (r *recorder) WakelockAcquired(t sim.Time, wl *Wakelock) {
	r.acquired = append(r.acquired, wl.Tag)
}

func (r *recorder) WakelockReleased(t sim.Time, wl *Wakelock, cause ReleaseCause) {
	r.released = append(r.released, wl.Tag+":"+cause.String())
}

func (r *recorder) ScreenChanged(t sim.Time, on bool, cause ScreenCause) {
	state := "off"
	if on {
		state = "on"
	}
	r.screen = append(r.screen, state+":"+cause.String())
}

func fixture(t *testing.T) (*sim.Engine, *hw.Meter, *app.PackageManager, *Manager, *recorder) {
	t.Helper()
	e := sim.NewEngine(1)
	b, err := hw.NewBattery(hw.NexusBatteryJ)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := hw.NewMeter(e.Now, hw.Nexus4(), b)
	if err != nil {
		t.Fatal(err)
	}
	pm := app.NewPackageManager()
	mgr, err := NewManager(e, meter, pm)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	mgr.AddHooks(rec)
	return e, meter, pm, mgr, rec
}

func installHolder(t *testing.T, pm *app.PackageManager, pkg string) *app.App {
	t.Helper()
	return pm.MustInstall(manifest.NewBuilder(pkg, pkg).
		Permission(manifest.PermWakeLock).
		Activity("Main", true).
		MustBuild())
}

func TestScreenStartsOnAndTimesOut(t *testing.T) {
	e, meter, _, mgr, rec := fixture(t)
	if !mgr.ScreenOn() || !meter.ScreenOn() {
		t.Fatal("screen should start on")
	}
	if err := e.RunFor(31 * time.Second); err != nil {
		t.Fatal(err)
	}
	if mgr.ScreenOn() || meter.ScreenOn() {
		t.Fatal("screen should time out after 30s")
	}
	if len(rec.screen) == 0 || rec.screen[len(rec.screen)-1] != "off:timeout" {
		t.Fatalf("screen events = %v", rec.screen)
	}
	// With no wakelocks and screen off the platform suspends.
	if !meter.Suspended() {
		t.Fatal("platform should suspend")
	}
}

func TestUserActivityResetsTimeout(t *testing.T) {
	e, _, _, mgr, _ := fixture(t)
	if err := e.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	mgr.UserActivity()
	if err := e.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !mgr.ScreenOn() {
		t.Fatal("user activity should have reset the timeout")
	}
	if err := e.RunFor(11 * time.Second); err != nil {
		t.Fatal(err)
	}
	if mgr.ScreenOn() {
		t.Fatal("screen should be off 30s after last activity")
	}
}

func TestUserActivityWakesDevice(t *testing.T) {
	e, meter, _, mgr, _ := fixture(t)
	if err := e.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !meter.Suspended() {
		t.Fatal("precondition: suspended")
	}
	mgr.UserActivity()
	if meter.Suspended() || !mgr.ScreenOn() {
		t.Fatal("user activity should wake device and screen")
	}
}

func TestAcquireRequiresPermission(t *testing.T) {
	_, _, pm, mgr, _ := fixture(t)
	noPerm := pm.MustInstall(manifest.NewBuilder("com.noperm", "NoPerm").
		Activity("Main", true).MustBuild())
	if _, err := mgr.Acquire(noPerm.UID, Partial, "x"); err == nil ||
		!strings.Contains(err.Error(), manifest.PermWakeLock) {
		t.Fatalf("err = %v, want permission failure", err)
	}
}

func TestSystemAppBypassesPermission(t *testing.T) {
	_, _, pm, mgr, _ := fixture(t)
	sys, err := pm.InstallSystem(manifest.NewBuilder("android.systemui", "SystemUI").
		Activity("Main", true).MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Acquire(sys.UID, Partial, "sys"); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireErrors(t *testing.T) {
	_, _, pm, mgr, _ := fixture(t)
	a := installHolder(t, pm, "com.a")
	if _, err := mgr.Acquire(999, Partial, "x"); err == nil {
		t.Fatal("unknown uid accepted")
	}
	if _, err := mgr.Acquire(a.UID, WakelockType(9), "x"); err == nil {
		t.Fatal("invalid type accepted")
	}
	a.Kill()
	if _, err := mgr.Acquire(a.UID, Partial, "x"); err == nil {
		t.Fatal("dead process accepted")
	}
}

func TestPartialWakelockPreventsSuspendNotScreenOff(t *testing.T) {
	e, meter, pm, mgr, _ := fixture(t)
	a := installHolder(t, pm, "com.a")
	wl, err := mgr.Acquire(a.UID, Partial, "work")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if mgr.ScreenOn() {
		t.Fatal("partial lock must not keep screen on")
	}
	if meter.Suspended() {
		t.Fatal("partial lock must prevent suspend")
	}
	if err := wl.Release(); err != nil {
		t.Fatal(err)
	}
	if !meter.Suspended() {
		t.Fatal("release with screen off should suspend")
	}
}

func TestScreenWakelockForcesScreenOn(t *testing.T) {
	e, _, pm, mgr, rec := fixture(t)
	a := installHolder(t, pm, "com.a")
	// Let the screen time out first.
	if err := e.RunFor(40 * time.Second); err != nil {
		t.Fatal(err)
	}
	if mgr.ScreenOn() {
		t.Fatal("precondition: screen off")
	}
	wl, err := mgr.Acquire(a.UID, ScreenBright, "video")
	if err != nil {
		t.Fatal(err)
	}
	if !mgr.ScreenOn() {
		t.Fatal("screen wakelock should light the screen")
	}
	found := false
	for _, s := range rec.screen {
		if s == "on:wakelock" {
			found = true
		}
	}
	if !found {
		t.Fatalf("screen events = %v, want on:wakelock", rec.screen)
	}
	// Screen stays on well past the timeout while held.
	if err := e.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !mgr.ScreenOn() {
		t.Fatal("screen should stay on while wakelock held")
	}
	if err := wl.Release(); err != nil {
		t.Fatal(err)
	}
	// After release the timeout eventually turns it off.
	if err := e.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if mgr.ScreenOn() {
		t.Fatal("screen should time out after release")
	}
}

func TestDoubleReleaseErrors(t *testing.T) {
	_, _, pm, mgr, _ := fixture(t)
	a := installHolder(t, pm, "com.a")
	wl, err := mgr.Acquire(a.UID, Partial, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Release(); err != nil {
		t.Fatal(err)
	}
	if err := wl.Release(); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestLinkToDeathReleasesWakelock(t *testing.T) {
	_, meter, pm, mgr, rec := fixture(t)
	a := installHolder(t, pm, "com.a")
	wl, err := mgr.Acquire(a.UID, Partial, "leak")
	if err != nil {
		t.Fatal(err)
	}
	a.Kill()
	if wl.Held() {
		t.Fatal("death should release wakelock")
	}
	want := "leak:link-to-death"
	if len(rec.released) != 1 || rec.released[0] != want {
		t.Fatalf("released = %v, want [%s]", rec.released, want)
	}
	_ = meter
}

func TestHeldByAndAnyLock(t *testing.T) {
	_, _, pm, mgr, _ := fixture(t)
	a := installHolder(t, pm, "com.a")
	b := installHolder(t, pm, "com.b")
	if mgr.AnyLock() {
		t.Fatal("no locks yet")
	}
	w1, _ := mgr.Acquire(a.UID, Partial, "zz")
	w2, _ := mgr.Acquire(a.UID, ScreenBright, "aa")
	if _, err := mgr.Acquire(b.UID, Partial, "bb"); err != nil {
		t.Fatal(err)
	}
	locks := mgr.HeldBy(a.UID)
	if len(locks) != 2 || locks[0].Tag != "aa" || locks[1].Tag != "zz" {
		t.Fatalf("HeldBy = %+v", locks)
	}
	if !mgr.AnyScreenLock() {
		t.Fatal("screen lock held")
	}
	_ = w1.Release()
	_ = w2.Release()
	if mgr.AnyScreenLock() {
		t.Fatal("screen lock released")
	}
	if !mgr.AnyLock() {
		t.Fatal("b still holds a lock")
	}
}

func TestNoSleepBugDrainsEnergy(t *testing.T) {
	// The paper's core wakelock hazard: an unreleased partial wakelock
	// keeps the platform at idle-awake draw instead of suspend draw.
	e, meter, pm, mgr, _ := fixture(t)
	a := installHolder(t, pm, "com.leaky")
	if _, err := mgr.Acquire(a.UID, Partial, "never-released"); err != nil {
		t.Fatal(err)
	}
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	meter.Flush()
	drainWith := meter.Battery().DrainedJ()

	// Same hour without the lock.
	e2 := sim.NewEngine(1)
	b2, _ := hw.NewBattery(hw.NexusBatteryJ)
	m2, _ := hw.NewMeter(e2.Now, hw.Nexus4(), b2)
	pm2 := app.NewPackageManager()
	if _, err := NewManager(e2, m2, pm2); err != nil {
		t.Fatal(err)
	}
	if err := e2.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	m2.Flush()
	drainWithout := b2.DrainedJ()

	if drainWith < 2*drainWithout {
		t.Fatalf("no-sleep bug drain %v should far exceed %v", drainWith, drainWithout)
	}
}

func TestSetScreenTimeout(t *testing.T) {
	e, _, _, mgr, _ := fixture(t)
	if err := mgr.SetScreenTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.RunFor(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if mgr.ScreenOn() {
		t.Fatal("short timeout should have fired")
	}
	if err := mgr.SetScreenTimeout(0); err == nil {
		t.Fatal("zero timeout accepted")
	}
}

func TestStringers(t *testing.T) {
	if Partial.String() != "PARTIAL_WAKE_LOCK" || !Full.KeepsScreenOn() {
		t.Fatal("wakelock type metadata wrong")
	}
	if Partial.KeepsScreenOn() {
		t.Fatal("partial keeps screen on?")
	}
	for _, s := range []string{
		WakelockType(0).String(), ReleaseCause(0).String(), ScreenCause(0).String(),
	} {
		if !strings.Contains(s, "(0)") {
			t.Errorf("zero-value stringer = %q", s)
		}
	}
	if ReleasedExplicit.String() != "explicit" || ReleasedLinkToDeath.String() != "link-to-death" {
		t.Fatal("release cause names wrong")
	}
	if ScreenUserActivity.String() != "user-activity" || ScreenTimeout.String() != "timeout" ||
		ScreenWakelock.String() != "wakelock" {
		t.Fatal("screen cause names wrong")
	}
}

func TestNewManagerNilDeps(t *testing.T) {
	if _, err := NewManager(nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}

func TestDimWakelockDimsAtTimeout(t *testing.T) {
	e, meter, pm, mgr, _ := fixture(t)
	a := installHolder(t, pm, "com.dim")
	wl, err := mgr.Acquire(a.UID, ScreenDim, "reader")
	if err != nil {
		t.Fatal(err)
	}
	if meter.ScreenDimmed() {
		t.Fatal("screen should start undimmed")
	}
	// At timeout the display stays on but drops to the dim state.
	if err := e.RunFor(31 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !mgr.ScreenOn() {
		t.Fatal("dim lock should keep screen on")
	}
	if !meter.ScreenDimmed() {
		t.Fatal("dim lock should allow dimming at timeout")
	}
	// A user touch undims and resets.
	mgr.UserActivity()
	if meter.ScreenDimmed() {
		t.Fatal("user activity should undim")
	}
	if err := wl.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestBrightLockPreventsDim(t *testing.T) {
	e, meter, pm, mgr, _ := fixture(t)
	a := installHolder(t, pm, "com.dimbr")
	if _, err := mgr.Acquire(a.UID, ScreenDim, "reader"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Acquire(a.UID, ScreenBright, "video"); err != nil {
		t.Fatal(err)
	}
	if err := e.RunFor(31 * time.Second); err != nil {
		t.Fatal(err)
	}
	if meter.ScreenDimmed() {
		t.Fatal("bright lock should prevent dimming")
	}
	if !mgr.ScreenOn() {
		t.Fatal("screen should stay on")
	}
}

func TestDimStateReducesScreenPower(t *testing.T) {
	e, meter, pm, mgr, _ := fixture(t)
	a := installHolder(t, pm, "com.dimpow")
	if _, err := mgr.Acquire(a.UID, ScreenDim, "reader"); err != nil {
		t.Fatal(err)
	}
	bright := meter.InstantScreenPowerMW()
	if err := e.RunFor(31 * time.Second); err != nil {
		t.Fatal(err)
	}
	dim := meter.InstantScreenPowerMW()
	if dim <= 0 || dim >= bright {
		t.Fatalf("dim power %v should be in (0, %v)", dim, bright)
	}
}
