package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestFleetBenchWritesArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	if err := run([]string{"-fleet", "4", "-workers", "2", "-fleet-out", out}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art fleetArtifact
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Devices != 4 || len(art.Runs) != 2 || !art.Deterministic {
		t.Fatalf("artifact = %+v", art)
	}
	if art.Summary.TotalDrainedJ <= 0 || art.Summary.DetectionRate != 1 {
		t.Fatalf("summary = %+v", art.Summary)
	}
}

func TestFleetBenchNoArtifact(t *testing.T) {
	if err := run([]string{"-fleet", "2", "-workers", "2", "-fleet-out", ""}); err != nil {
		t.Fatal(err)
	}
}

func TestMicroOnly(t *testing.T) {
	if err := run([]string{"-micro", "-reps", "6"}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyOnly(t *testing.T) {
	if err := run([]string{"-energy"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadReps(t *testing.T) {
	if err := run([]string{"-micro", "-reps", "1"}); err == nil {
		t.Fatal("too-few reps accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
