package main

import "testing"

func TestMicroOnly(t *testing.T) {
	if err := run([]string{"-micro", "-reps", "6"}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyOnly(t *testing.T) {
	if err := run([]string{"-energy"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadReps(t *testing.T) {
	if err := run([]string{"-micro", "-reps", "1"}); err == nil {
		t.Fatal("too-few reps accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
