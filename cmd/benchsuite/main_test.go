package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestFleetBenchWritesArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	if err := run([]string{"-fleet", "4", "-workers", "2", "-fleet-out", out}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art fleetArtifact
	if err := json.Unmarshal(blob, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Devices != 4 || len(art.Runs) != 2 || !art.Deterministic {
		t.Fatalf("artifact = %+v", art)
	}
	if art.Summary.TotalDrainedJ <= 0 || art.Summary.DetectionRate != 1 {
		t.Fatalf("summary = %+v", art.Summary)
	}
}

func TestFleetBenchNoArtifact(t *testing.T) {
	if err := run([]string{"-fleet", "2", "-workers", "2", "-fleet-out", ""}); err != nil {
		t.Fatal(err)
	}
}

func TestMicroOnly(t *testing.T) {
	if err := run([]string{"-micro", "-reps", "6"}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyOnly(t *testing.T) {
	if err := run([]string{"-energy"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadReps(t *testing.T) {
	if err := run([]string{"-micro", "-reps", "1"}); err == nil {
		t.Fatal("too-few reps accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestObsvBenchWritesArtifact runs a small observability overhead study
// and checks the artifact schema. The wall-time gate itself is not
// asserted here (2 reps on a loaded CI box is not a measurement); the
// study's sanity side — findings and flame stacks from the stealth
// run — must hold regardless.
func TestObsvBenchWritesArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_obsv.json")
	err := run([]string{"-obsv", "-obsv-reps", "2", "-obsv-out", out})
	blob, readErr := os.ReadFile(out)
	if readErr != nil {
		t.Fatalf("artifact not written (run err: %v): %v", err, readErr)
	}
	var art obsvArtifact
	if jsonErr := json.Unmarshal(blob, &art); jsonErr != nil {
		t.Fatalf("artifact is not valid JSON: %v", jsonErr)
	}
	if art.Reps != 2 || art.BaselineMS <= 0 || art.EnabledMS <= 0 {
		t.Fatalf("artifact = %+v", art)
	}
	if art.Findings == 0 || art.FlameStacks == 0 {
		t.Fatalf("stealth run produced no observability output: %+v", art)
	}
	if art.DisabledGatePct != 1 {
		t.Fatalf("gate threshold drifted: %+v", art)
	}
}

// TestServeFlag: -serve starts the plane and returns once the stop
// channel closes.
func TestServeFlag(t *testing.T) {
	serveStop = make(chan struct{})
	close(serveStop)
	defer func() { serveStop = nil }()
	if err := run([]string{"-energy", "-serve", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
}
