package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/internal/corpus/replay"
)

// corpusArtifact is the BENCH_corpus.json schema: the full statistical
// replay result (per-cell detection and false-positive Wilson
// intervals) plus the run's wall time, so benchcmp can track both the
// separation quality and the replay's cost across PRs.
type corpusArtifact struct {
	replay.Result
	WallMS float64 `json:"wall_ms"`
}

// corpusStudyRun replays the corpus at the given shape, prints the
// summary table, and enforces the interval gates (binding only at
// reps >= replay.MinGatedReps; the zero-violation gate always binds).
// The artifact is returned even when a gate fails so CI logs carry the
// numbers.
func corpusStudyRun(opts replay.Options) (corpusArtifact, error) {
	start := time.Now()
	res, err := replay.Run(context.Background(), opts)
	if err != nil {
		return corpusArtifact{}, err
	}
	art := corpusArtifact{Result: *res, WallMS: float64(time.Since(start).Microseconds()) / 1000}
	fmt.Println(res.Render())
	fmt.Printf("corpus replay: %d cells x %d reps in %.1fms\n", len(res.Cells), res.Reps, art.WallMS)
	if fails := res.Gate(); len(fails) > 0 {
		return art, fmt.Errorf("corpus gate failed:\n  %s", joinLines(fails))
	}
	return art, nil
}

// corpusBench runs the corpus replay study and records it in
// BENCH_corpus.json.
func corpusBench(opts replay.Options, outPath string) error {
	art, gateErr := corpusStudyRun(opts)
	if len(art.Cells) == 0 {
		return gateErr
	}
	if outPath != "" {
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return gateErr
}

// corpusOptions assembles replay options from the benchsuite flags:
// cells > 0 restricts the run to the first N canonical cells (the
// order interleaves benign and attack variants, so even a two-cell
// smoke run exercises both gates).
func corpusOptions(reps, workers, cells int, horizon time.Duration) replay.Options {
	opts := replay.Options{Reps: reps, Workers: workers, Horizon: horizon}
	if cells > 0 {
		all := corpus.Cells()
		if cells > len(all) {
			cells = len(all)
		}
		opts.Cells = all[:cells]
	}
	return opts
}

// corpusCompare is benchcmp's corpus leg: rerun the replay at the
// committed artifact's exact shape, re-enforce the statistical gates,
// and hand the wall-clock pair to the regression comparator.
func corpusCompare(compare func(name string, fresh, committed float64)) error {
	var old corpusArtifact
	if err := readArtifact("BENCH_corpus.json", &old); err != nil {
		return err
	}
	if len(old.Cells) == 0 {
		return fmt.Errorf("benchcmp: BENCH_corpus.json has no cells")
	}
	fresh, err := corpusStudyRun(replay.Options{
		RootSeed: old.RootSeed,
		Reps:     old.Reps,
		Horizon:  old.Horizon,
	})
	if err != nil {
		return err
	}
	// Same root seed and shape must reproduce the committed statistics
	// exactly — the replay is deterministic, so any drift is a real
	// behaviour change that belongs in a regenerated artifact.
	freshCells, _ := json.Marshal(fresh.Cells)
	oldCells, _ := json.Marshal(old.Cells)
	if string(freshCells) != string(oldCells) {
		return fmt.Errorf("benchcmp: corpus replay diverged from committed BENCH_corpus.json — regenerate it with -corpus if the change is intended")
	}
	compare("corpus/replay", fresh.WallMS, old.WallMS)
	return nil
}
