// Command benchsuite regenerates the paper's overhead study: the Table I
// / Figure 10 micro benchmark (50 reps per operation under three device
// configurations) and the Figure 11 AnTuTu comparison, plus the §VI-B
// energy-efficiency parity check.
//
// Usage:
//
//	benchsuite            # everything
//	benchsuite -micro     # Figure 10 only
//	benchsuite -antutu    # Figure 11 only
//	benchsuite -energy    # energy-efficiency check only
//	benchsuite -fleet 64 -workers 8 -shards 8   # fleet scaling study -> BENCH_fleet.json
//	benchsuite -fleet-mem 100000      # streaming memory-budget study (peak heap + bytes/device)
//	benchsuite -telemetry             # overhead study -> BENCH_telemetry.json
//	benchsuite -obsv                  # observability overhead study -> BENCH_obsv.json
//	benchsuite -trace                 # causal-span tracing overhead study -> BENCH_trace.json
//	benchsuite -corpus                # scenario-corpus statistical replay -> BENCH_corpus.json
//	benchsuite -benchcmp              # rerun studies, compare against committed BENCH_*.json
//	benchsuite -cpuprofile cpu.pprof -memprofile mem.pprof -micro
//	benchsuite -micro -serve 127.0.0.1:9090   # live /debug/pprof during the run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"repro/internal/accounting"
	"repro/internal/antutu"
	"repro/internal/corpus"
	"repro/internal/corpus/replay"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/fleet/population"
	"repro/internal/microbench"
	"repro/internal/scenario"
	"repro/internal/serveutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	micro := fs.Bool("micro", false, "run the Figure 10 micro benchmark only")
	antutuOnly := fs.Bool("antutu", false, "run the Figure 11 AnTuTu benchmark only")
	energy := fs.Bool("energy", false, "run the energy-efficiency parity check only")
	reps := fs.Int("reps", microbench.DefaultReps, "micro benchmark repetitions")
	fleetN := fs.Int("fleet", 0, "run an N-device fleet scaling study")
	workers := fs.Int("workers", 0, "fleet worker count (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "fleet accumulator shard count (0 = workers)")
	fleetMem := fs.Int("fleet-mem", 0, "run the streaming memory-budget study over an N-device population fleet (CI uses >= 100k)")
	fleetSeed := fs.Int64("fleet-seed", 42, "fleet seed (per-device seeds derive from it)")
	fleetReps := fs.Int("fleet-reps", defaultFleetReps, "fleet study repetitions (min wall time per worker count)")
	fleetOut := fs.String("fleet-out", "BENCH_fleet.json", "fleet artifact path (empty = don't write)")
	telem := fs.Bool("telemetry", false, "run the telemetry overhead study")
	telemReps := fs.Int("telemetry-reps", experiments.DefaultTelemetryReps, "telemetry study repetitions")
	telemOut := fs.String("telemetry-out", "BENCH_telemetry.json", "telemetry artifact path (empty = don't write)")
	checkStudy := fs.Bool("check", false, "run the invariant checker overhead study")
	checkReps := fs.Int("check-reps", experiments.DefaultCheckReps, "checker study repetitions")
	checkOut := fs.String("check-out", "BENCH_check.json", "checker artifact path (empty = don't write)")
	obsvStudy := fs.Bool("obsv", false, "run the observability-plane overhead study")
	obsvReps := fs.Int("obsv-reps", experiments.DefaultObsvReps, "obsv study repetitions")
	obsvOut := fs.String("obsv-out", "BENCH_obsv.json", "obsv artifact path (empty = don't write)")
	traceStudy := fs.Bool("trace", false, "run the causal-span tracing overhead study")
	traceReps := fs.Int("trace-reps", experiments.DefaultTraceReps, "trace study repetitions")
	traceOut := fs.String("trace-out", "BENCH_trace.json", "trace artifact path (empty = don't write)")
	corpusStudy := fs.Bool("corpus", false, "run the scenario-corpus statistical replay (watchdog separation with Wilson CIs)")
	corpusReps := fs.Int("corpus-reps", replay.DefaultReps, "corpus repetitions per cell (interval gates bind at >= 30)")
	corpusCells := fs.Int("corpus-cells", 0, "restrict the corpus to the first N canonical cells (0 = all; smoke runs use 2)")
	corpusHorizon := fs.Duration("corpus-horizon", corpus.DefaultHorizon, "virtual span of each corpus scenario")
	corpusOut := fs.String("corpus-out", "BENCH_corpus.json", "corpus artifact path (empty = don't write)")
	jobsStudy := fs.Bool("jobs", false, "run the jobs control-plane throughput study (cold vs content-addressed cache)")
	jobsReps := fs.Int("jobs-reps", defaultJobsReps, "jobs study repetitions (min-over-reps wall times)")
	jobsOut := fs.String("jobs-out", "BENCH_jobs.json", "jobs artifact path (empty = don't write)")
	serveAddr := fs.String("serve", "", "serve the live observability plane (healthz, /debug/pprof) on this address; blocks after the run until interrupted")
	serveJobs := fs.Bool("serve-jobs", false, "with -serve: mount the simulation-as-a-service control plane at /jobs")
	benchcmp := fs.Bool("benchcmp", false, "rerun the fleet/telemetry/check studies and fail on >15% wall-clock regression vs the committed BENCH_*.json")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite: memprofile:", err)
			}
		}()
	}
	// -serve starts the plane before the work so /debug/pprof can profile
	// a long study live; the process then blocks until Ctrl-C.
	plane, err := serveutil.Start(serveutil.Options{
		Addr: *serveAddr, Name: "benchsuite", Jobs: *serveJobs, Banner: os.Stderr,
	})
	if err != nil {
		return err
	}

	work := func() error {
		if *benchcmp {
			return benchCompare()
		}
		if *telem {
			return telemetryBench(*telemReps, *telemOut)
		}
		if *checkStudy {
			return checkBench(*checkReps, *checkOut)
		}
		if *obsvStudy {
			return obsvBench(*obsvReps, *obsvOut)
		}
		if *traceStudy {
			return traceBench(*traceReps, *traceOut)
		}
		if *corpusStudy {
			return corpusBench(corpusOptions(*corpusReps, *workers, *corpusCells, *corpusHorizon), *corpusOut)
		}
		if *jobsStudy {
			return jobsBench(*jobsReps, *jobsOut)
		}
		if *fleetMem > 0 {
			return fleetMemStudy(*fleetMem, *workers, *fleetSeed)
		}
		if *fleetN > 0 {
			return fleetBench(*fleetN, *workers, *shards, *fleetSeed, *fleetReps, *fleetOut)
		}
		all := !*micro && !*antutuOnly && !*energy

		if all || *micro {
			r, err := experiments.Fig10WithReps(*reps)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		}
		if all || *antutuOnly {
			r, err := experiments.Fig11WithConfig(antutu.Config{})
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		}
		if all || *energy {
			if err := energyParity(); err != nil {
				return err
			}
		}
		return nil
	}

	return plane.Finish(work(), serveStop)
}

// serveStop, when non-nil, ends a -serve wait as soon as it closes;
// the CLI tests use it in place of Ctrl-C.
var serveStop chan struct{}

// fleetArtifact is the BENCH_fleet.json schema: one scaling record per
// run, so successive PRs can track the fleet's perf trajectory.
type fleetArtifact struct {
	Devices int   `json:"devices"`
	Seed    int64 `json:"seed"`
	// Cpus records the host parallelism the run had available. The
	// speedup gate below only binds when the host could physically
	// deliver it (Cpus >= workers); artifacts written on small hosts
	// still carry honest wall-clock numbers for benchcmp.
	Cpus          int           `json:"cpus"`
	Runs          []fleetTiming `json:"runs"`
	Speedup       float64       `json:"speedup"`
	Deterministic bool          `json:"deterministic"`
	// BytesPerDevice is the streaming path's allocation footprint: the
	// min-over-reps runtime.MemStats.TotalAlloc delta of the parallel
	// leg divided by the device count. benchcmp gates it alongside the
	// wall times — a fleet whose per-device churn creeps up will blow
	// the memory budget long before it blows the clock.
	BytesPerDevice float64 `json:"bytes_per_device"`
	// DeviceSimHoursPerSec is fleet throughput in simulated device-hours
	// per wall second (Summary.TotalSimH over the parallel leg's minimum
	// wall time).
	DeviceSimHoursPerSec float64      `json:"device_sim_hours_per_sec"`
	Summary              fleetNumbers `json:"summary"`
}

type fleetTiming struct {
	Workers int     `json:"workers"`
	Shards  int     `json:"shards"`
	WallMS  float64 `json:"wall_ms"`
}

type fleetNumbers struct {
	TotalDrainedJ float64 `json:"total_drained_j"`
	TotalSimH     float64 `json:"total_sim_h"`
	Attacks       int     `json:"attacks"`
	DetectionRate float64 `json:"detection_rate"`
	Failed        int     `json:"failed"`
}

// fleetSpeedupGate is the parallel-efficiency floor: with the hot paths
// allocation-free, an 8-worker run on a host with >=8 CPUs must beat the
// serial run by at least this factor.
const fleetSpeedupGate = 3.0

// defaultFleetReps repeats each worker-count run and keeps the minimum
// wall time, the same noise control the telemetry and check studies
// use — a single ~30 ms run is at the mercy of scheduler luck, which is
// exactly what the benchcmp regression gate must not be.
const defaultFleetReps = 3

// fleetBench runs the fleet study and records it in BENCH_fleet.json.
func fleetBench(devices, workers, shards int, seed int64, reps int, outPath string) error {
	art, gateErr := fleetStudy(devices, workers, shards, seed, reps)
	if art.Devices == 0 { // study itself failed before producing numbers
		return gateErr
	}
	if outPath != "" {
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return gateErr
}

// fleetStudy runs the stealth-attack fleet serially and with the
// requested worker and shard counts (reps times each, keeping the
// minimum wall time and allocation delta), prints the aggregate, checks
// the renders match byte for byte across both legs, and enforces the
// determinism and (when the host has the CPUs for it) speedup gates.
// The fleet runs the streaming path — no per-device Results are
// retained — so the allocation delta is exactly the churn the
// bytes/device budget gates. The artifact is returned even when a gate
// fails so callers can still record the numbers.
func fleetStudy(devices, workers, shards int, seed int64, reps int) (fleetArtifact, error) {
	if reps <= 0 {
		reps = defaultFleetReps
	}
	type runOut struct {
		timing  fleetTiming
		render  string
		numbers fleetNumbers
		// minAlloc is the smallest TotalAlloc delta across reps: GC
		// timing only ever adds bytes to a sample, so the minimum is the
		// honest per-run floor, same logic as the min wall time.
		minAlloc float64
	}
	runAt := func(w, s int) (runOut, error) {
		var out runOut
		for rep := 0; rep < reps; rep++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			fr, err := experiments.FleetBenchStudy(devices, w, s, seed)
			if err != nil {
				return runOut{}, err
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&after)
			alloc := float64(after.TotalAlloc - before.TotalAlloc)
			for _, f := range fr.Summary.Failures {
				return runOut{}, fmt.Errorf("device %d: %s", f.Index, f.Err)
			}
			if fr.Summary.Failed > 0 {
				return runOut{}, fmt.Errorf("%d devices failed", fr.Summary.Failed)
			}
			ms := float64(wall.Microseconds()) / 1000
			if rep == 0 {
				out = runOut{
					timing: fleetTiming{Workers: fr.Workers, Shards: fr.Shards, WallMS: ms},
					render: fr.Render(),
					numbers: fleetNumbers{
						TotalDrainedJ: fr.Summary.TotalDrainedJ,
						TotalSimH:     fr.Summary.TotalSimH,
						Attacks:       fr.Summary.Attacks,
						DetectionRate: fr.Summary.DetectionRate(),
						Failed:        fr.Summary.Failed,
					},
					minAlloc: alloc,
				}
				continue
			}
			if render := fr.Render(); render != out.render {
				return runOut{}, fmt.Errorf("fleet render differs between reps at %d workers — determinism bug", w)
			}
			if ms < out.timing.WallMS {
				out.timing.WallMS = ms
			}
			if alloc < out.minAlloc {
				out.minAlloc = alloc
			}
		}
		return out, nil
	}

	serial, err := runAt(1, 1)
	if err != nil {
		return fleetArtifact{}, err
	}
	parallel, err := runAt(workers, shards)
	if err != nil {
		return fleetArtifact{}, err
	}
	fmt.Println(parallel.render)

	art := fleetArtifact{
		Devices:              devices,
		Seed:                 seed,
		Cpus:                 runtime.NumCPU(),
		Runs:                 []fleetTiming{serial.timing, parallel.timing},
		Speedup:              serial.timing.WallMS / parallel.timing.WallMS,
		Deterministic:        serial.render == parallel.render,
		BytesPerDevice:       parallel.minAlloc / float64(devices),
		DeviceSimHoursPerSec: parallel.numbers.TotalSimH / (parallel.timing.WallMS / 1000),
		Summary:              parallel.numbers,
	}
	fmt.Printf("fleet: %d devices, workers %d shards %d vs 1: %.1fms vs %.1fms (%.2fx), deterministic=%v, cpus=%d\n",
		devices, parallel.timing.Workers, parallel.timing.Shards, parallel.timing.WallMS, serial.timing.WallMS,
		art.Speedup, art.Deterministic, art.Cpus)
	fmt.Printf("fleet: %.0f B/device allocated (streaming), %.1f device-sim-hours/sec\n",
		art.BytesPerDevice, art.DeviceSimHoursPerSec)
	if !art.Deterministic {
		return art, fmt.Errorf("fleet aggregate differs between worker counts — determinism bug")
	}
	if art.Cpus >= parallel.timing.Workers {
		if art.Speedup < fleetSpeedupGate {
			return art, fmt.Errorf("fleet speedup gate failed: %.2fx < %.1fx with %d workers on %d CPUs",
				art.Speedup, fleetSpeedupGate, parallel.timing.Workers, art.Cpus)
		}
	} else {
		fmt.Printf("speedup gate (>=%.1fx) not binding: %d workers on a %d-CPU host cannot run in parallel\n",
			fleetSpeedupGate, parallel.timing.Workers, art.Cpus)
	}
	return art, nil
}

// fleetMemBudgetBytes is the peak-heap growth ceiling for a streaming
// population fleet. The streaming accumulator's live set is O(workers +
// pending window + index blocks), not O(devices), so the budget is a
// constant independent of fleet size: a 100k-device run must fit the
// same heap a 10k-device run does. Retaining 100k per-device Results
// (ledger maps, violations, custom payloads) would blow this by an
// order of magnitude — which is exactly the regression this gate is
// for.
const fleetMemBudgetBytes = 256 << 20

// memSampleEvery is how many progress ticks separate ReadMemStats
// samples during the memory study; ReadMemStats briefly stops the
// world, so sampling every device would distort the run it measures.
const memSampleEvery = 4096

// fleetMemStudy runs an N-device population fleet (heterogeneous
// cohorts from internal/fleet/population) down the streaming path and
// checks the peak-heap budget. Unlike fleetStudy this is a pass/fail
// probe, not an artifact writer: the gated bytes/device number lives in
// BENCH_fleet.json via -fleet, while this study answers "does a fleet
// two orders of magnitude larger still fit in constant memory?"
func fleetMemStudy(devices, workers int, seed int64) error {
	pop := population.Default()
	spec, err := pop.FleetSpec(devices, workers, 0, seed)
	if err != nil {
		return err
	}
	var peak atomic.Uint64
	var ticks atomic.Int64
	spec.Progress = func(fleet.Progress) {
		if ticks.Add(1)%memSampleEvery != 0 {
			return
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			cur := peak.Load()
			if ms.HeapAlloc <= cur || peak.CompareAndSwap(cur, ms.HeapAlloc) {
				return
			}
		}
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fr, err := fleet.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > peak.Load() {
		peak.Store(after.HeapAlloc)
	}

	for _, f := range fr.Summary.Failures {
		return fmt.Errorf("fleet-mem: device %d: %s", f.Index, f.Err)
	}
	if fr.Summary.Failed > 0 {
		return fmt.Errorf("fleet-mem: %d devices failed", fr.Summary.Failed)
	}
	if fr.Results != nil {
		return fmt.Errorf("fleet-mem: fleet retained per-device results — the study must stream")
	}
	peakGrowth := int64(peak.Load()) - int64(before.HeapAlloc)
	if peakGrowth < 0 {
		peakGrowth = 0
	}
	bytesPerDevice := float64(after.TotalAlloc-before.TotalAlloc) / float64(devices)
	fmt.Printf("fleet-mem: %d devices (%d cohorts), workers %d shards %d: %.1fs wall, %.1f device-sim-hours/sec\n",
		devices, len(pop.Cohorts), fr.Workers, fr.Shards, wall.Seconds(),
		fr.Summary.TotalSimH/wall.Seconds())
	fmt.Printf("fleet-mem: peak heap growth %.1f MiB (budget %.0f MiB), %.0f B/device allocated\n",
		float64(peakGrowth)/(1<<20), float64(fleetMemBudgetBytes)/(1<<20), bytesPerDevice)
	if peakGrowth > fleetMemBudgetBytes {
		return fmt.Errorf("fleet-mem: peak heap grew %.1f MiB > %.0f MiB budget — streaming path is retaining state",
			float64(peakGrowth)/(1<<20), float64(fleetMemBudgetBytes)/(1<<20))
	}
	fmt.Println("fleet-mem: memory budget pass")
	return nil
}

// telemetryArtifact is the BENCH_telemetry.json schema: the measured
// overhead floors plus the gate thresholds the repo commits to (enabled
// recording within 10% of baseline, a built-but-disabled recorder
// within 1%), so successive PRs can catch instrumentation regressions.
type telemetryArtifact struct {
	Reps               int     `json:"reps"`
	BaselineMS         float64 `json:"baseline_ms"`
	DisabledMS         float64 `json:"disabled_ms"`
	EnabledMS          float64 `json:"enabled_ms"`
	DisabledOverheadPc float64 `json:"disabled_overhead_pct"`
	EnabledOverheadPc  float64 `json:"enabled_overhead_pct"`
	DisabledGatePct    float64 `json:"disabled_gate_pct"`
	EnabledGatePct     float64 `json:"enabled_gate_pct"`
	DisabledGatePass   bool    `json:"disabled_gate_pass"`
	EnabledGatePass    bool    `json:"enabled_gate_pass"`
	EventsRecorded     uint64  `json:"events_recorded"`
	EventsDropped      uint64  `json:"events_dropped"`
}

// Overhead gates: the enabled recorder must stay within 10% of the
// uninstrumented baseline, and a recorder that is built but disabled
// must be within 1% (the cost of one branch per emission site).
const (
	enabledGatePct  = 10.0
	disabledGatePct = 1.0
)

// telemetryBench runs the overhead study and records the floors in
// BENCH_telemetry.json.
func telemetryBench(reps int, outPath string) error {
	art, gateErr := telemetryStudyRun(reps)
	if art.Reps == 0 {
		return gateErr
	}
	if outPath != "" {
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return gateErr
}

// telemetryGateScore is an attempt's worst gate statistic, each
// normalized by its threshold so one number ranks attempts across
// both gates (<= 1 means both pass).
func telemetryGateScore(r *experiments.TelemetryOverheadResult) float64 {
	return math.Max(r.DisabledOverheadPct()/disabledGatePct,
		r.EnabledOverheadPct()/enabledGatePct)
}

// telemetryStudyRun runs the overhead study — retrying up to
// obsvGateAttempts times and keeping the attempt with the best worst
// gate, the same near-threshold rationale as the obsv gate (the
// disabled statistic is a ~0-1% min-over-reps delta a single drifty
// attempt can push past 1%) — prints it and checks the gates. The
// artifact is returned even when a gate fails.
func telemetryStudyRun(reps int) (telemetryArtifact, error) {
	var res *experiments.TelemetryOverheadResult
	for attempt := 1; attempt <= obsvGateAttempts; attempt++ {
		r, err := experiments.TelemetryOverheadStudy(reps)
		if err != nil {
			return telemetryArtifact{}, err
		}
		if res == nil || telemetryGateScore(r) < telemetryGateScore(res) {
			res = r
		}
		if telemetryGateScore(res) <= 1 {
			break
		}
		fmt.Printf("telemetry gate attempt %d/%d: disabled %+.2f%%, enabled %+.2f%%, retrying\n",
			attempt, obsvGateAttempts, r.DisabledOverheadPct(), r.EnabledOverheadPct())
	}
	fmt.Println(res.Render())

	art := telemetryArtifact{
		Reps:               res.Reps,
		BaselineMS:         res.BaselineMS,
		DisabledMS:         res.DisabledMS,
		EnabledMS:          res.EnabledMS,
		DisabledOverheadPc: res.DisabledOverheadPct(),
		EnabledOverheadPc:  res.EnabledOverheadPct(),
		DisabledGatePct:    disabledGatePct,
		EnabledGatePct:     enabledGatePct,
		DisabledGatePass:   res.DisabledOverheadPct() <= disabledGatePct,
		EnabledGatePass:    res.EnabledOverheadPct() <= enabledGatePct,
		EventsRecorded:     res.EventsRecorded,
		EventsDropped:      res.EventsDropped,
	}
	fmt.Printf("gates: disabled %.2f%% <= %.0f%% pass=%v, enabled %.2f%% <= %.0f%% pass=%v\n",
		art.DisabledOverheadPc, disabledGatePct, art.DisabledGatePass,
		art.EnabledOverheadPc, enabledGatePct, art.EnabledGatePass)
	if !art.DisabledGatePass || !art.EnabledGatePass {
		return art, fmt.Errorf("telemetry overhead gate failed (disabled %+.2f%%, enabled %+.2f%%)",
			art.DisabledOverheadPc, art.EnabledOverheadPc)
	}
	return art, nil
}

// checkArtifact is the BENCH_check.json schema: the invariant checker's
// measured overhead floors and the gate the repo commits to (passive
// families 1-4 within 5% of an unchecked baseline; the differential
// oracle is reported but not gated — it is opt-in), so successive PRs
// can catch checker-cost regressions.
type checkArtifact struct {
	Reps                   int     `json:"reps"`
	BaselineMS             float64 `json:"baseline_ms"`
	EnabledMS              float64 `json:"enabled_ms"`
	DifferentialMS         float64 `json:"differential_ms"`
	EnabledOverheadPc      float64 `json:"enabled_overhead_pct"`
	DifferentialOverheadPc float64 `json:"differential_overhead_pct"`
	EnabledGatePct         float64 `json:"enabled_gate_pct"`
	EnabledGatePass        bool    `json:"enabled_gate_pass"`
	EnabledViolations      int     `json:"enabled_violations"`
	DifferentialViolations int     `json:"differential_violations"`
}

// checkGatePct: the passive checker must stay within 5% of the
// unchecked baseline to keep its always-available default honest.
const checkGatePct = 5.0

// checkBench runs the checker overhead study and records the floors in
// BENCH_check.json.
func checkBench(reps int, outPath string) error {
	art, gateErr := checkStudyRun(reps)
	if art.Reps == 0 {
		return gateErr
	}
	if outPath != "" {
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return gateErr
}

// checkStudyRun runs the checker overhead study, prints it and checks
// the gate. A nonzero violation count is itself a failure: the study
// doubles as a long-horizon invariant sweep. The artifact is returned
// even when a gate fails.
func checkStudyRun(reps int) (checkArtifact, error) {
	res, err := experiments.CheckOverheadStudy(reps)
	if err != nil {
		return checkArtifact{}, err
	}
	fmt.Println(res.Render())

	art := checkArtifact{
		Reps:                   res.Reps,
		BaselineMS:             res.BaselineMS,
		EnabledMS:              res.EnabledMS,
		DifferentialMS:         res.DifferentialMS,
		EnabledOverheadPc:      res.EnabledOverheadPct(),
		DifferentialOverheadPc: res.DifferentialOverheadPct(),
		EnabledGatePct:         checkGatePct,
		EnabledGatePass:        res.EnabledOverheadPct() <= checkGatePct,
		EnabledViolations:      res.EnabledViolations,
		DifferentialViolations: res.DifferentialViolations,
	}
	fmt.Printf("gates: enabled %.2f%% <= %.0f%% pass=%v, differential %.2f%% (reported, not gated)\n",
		art.EnabledOverheadPc, checkGatePct, art.EnabledGatePass, art.DifferentialOverheadPc)
	if art.EnabledViolations != 0 || art.DifferentialViolations != 0 {
		return art, fmt.Errorf("checker found %d passive / %d differential violations during the overhead study",
			art.EnabledViolations, art.DifferentialViolations)
	}
	if !art.EnabledGatePass {
		return art, fmt.Errorf("checker overhead gate failed (enabled %+.2f%% > %.0f%%)",
			art.EnabledOverheadPc, checkGatePct)
	}
	return art, nil
}

// obsvArtifact is the BENCH_obsv.json schema: the observability plane's
// measured overhead floors and the gate the repo commits to (a built
// but unused plane within 1% of an uninstrumented baseline; the fully
// enabled watchdog+flame path is reported, not gated — it rides on an
// enabled recorder, whose own 10% gate lives in BENCH_telemetry.json).
type obsvArtifact struct {
	Reps               int     `json:"reps"`
	BaselineMS         float64 `json:"baseline_ms"`
	DisabledMS         float64 `json:"disabled_ms"`
	EnabledMS          float64 `json:"enabled_ms"`
	DisabledOverheadPc float64 `json:"disabled_overhead_pct"`
	EnabledOverheadPc  float64 `json:"enabled_overhead_pct"`
	DisabledGatePct    float64 `json:"disabled_gate_pct"`
	DisabledGatePass   bool    `json:"disabled_gate_pass"`
	Findings           int     `json:"findings"`
	FlameStacks        int     `json:"flame_stacks"`
}

// obsvDisabledGatePct: observability that is off must cost nothing —
// within 1% of baseline, same budget as a disabled recorder.
const obsvDisabledGatePct = 1.0

// obsvBench runs the observability overhead study and records the
// floors in BENCH_obsv.json.
func obsvBench(reps int, outPath string) error {
	art, gateErr := obsvStudyRun(reps)
	if art.Reps == 0 {
		return gateErr
	}
	if outPath != "" {
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return gateErr
}

// obsvGateAttempts bounds the best-of-N retry of the paired gate: the
// gate statistic sits near its threshold (true disabled cost ~0.7%
// against a 1% gate), so one drifty attempt must not fail CI. The
// smallest attempt is the noise-floor estimate, same rationale as
// min-over-reps wall times.
const obsvGateAttempts = 3

// obsvStudyRun runs the study — retrying the paired gate up to
// obsvGateAttempts times and keeping the attempt with the smallest
// disabled overhead — prints it and checks the disabled-path gate. The enabled run doubles as a detection sweep: a stealth attack
// under a live watchdog that yields zero findings (or an empty flame)
// is a failure, not a fast run. The artifact is returned even when a
// gate fails.
func obsvStudyRun(reps int) (obsvArtifact, error) {
	var res *experiments.ObsvOverheadResult
	for attempt := 1; attempt <= obsvGateAttempts; attempt++ {
		r, err := experiments.ObsvOverheadStudy(reps)
		if err != nil {
			return obsvArtifact{}, err
		}
		if res == nil || r.DisabledOverheadPct() < res.DisabledOverheadPct() {
			res = r
		}
		if res.DisabledOverheadPct() <= obsvDisabledGatePct {
			break
		}
		fmt.Printf("obsv gate attempt %d/%d: disabled %+.2f%% > %.0f%%, retrying\n",
			attempt, obsvGateAttempts, r.DisabledOverheadPct(), obsvDisabledGatePct)
	}
	fmt.Println(res.Render())

	art := obsvArtifact{
		Reps:               res.Reps,
		BaselineMS:         res.BaselineMS,
		DisabledMS:         res.DisabledMS,
		EnabledMS:          res.EnabledMS,
		DisabledOverheadPc: res.DisabledOverheadPct(),
		EnabledOverheadPc:  res.EnabledOverheadPct(),
		DisabledGatePct:    obsvDisabledGatePct,
		DisabledGatePass:   res.DisabledOverheadPct() <= obsvDisabledGatePct,
		Findings:           res.Findings,
		FlameStacks:        res.FlameStacks,
	}
	fmt.Printf("gates: disabled %.2f%% <= %.0f%% pass=%v, enabled %.2f%% (reported, not gated)\n",
		art.DisabledOverheadPc, obsvDisabledGatePct, art.DisabledGatePass, art.EnabledOverheadPc)
	if art.Findings == 0 || art.FlameStacks == 0 {
		return art, fmt.Errorf("obsv study sanity failed: %d findings, %d flame stacks from a stealth-attack run",
			art.Findings, art.FlameStacks)
	}
	if !art.DisabledGatePass {
		return art, fmt.Errorf("obsv overhead gate failed (disabled %+.2f%% > %.0f%%)",
			art.DisabledOverheadPc, obsvDisabledGatePct)
	}
	return art, nil
}

// traceArtifact is the BENCH_trace.json schema: the causal span
// subsystem's measured overhead floors and the gates the repo commits
// to — a compiled-in but disabled tracer within 1% of an untraced
// baseline (every untraced job pays this path), and every-device
// tracing within 10% (the full-fidelity debugging mode). The default
// 1-in-64 head sampling sits between the two and is reported, not
// gated.
type traceArtifact struct {
	Reps               int     `json:"reps"`
	BaselineMS         float64 `json:"baseline_ms"`
	DisabledMS         float64 `json:"disabled_ms"`
	SampledMS          float64 `json:"sampled_ms"`
	FullMS             float64 `json:"full_ms"`
	DisabledOverheadPc float64 `json:"disabled_overhead_pct"`
	SampledOverheadPc  float64 `json:"sampled_overhead_pct"`
	FullOverheadPc     float64 `json:"full_overhead_pct"`
	DisabledGatePct    float64 `json:"disabled_gate_pct"`
	FullGatePct        float64 `json:"full_gate_pct"`
	DisabledGatePass   bool    `json:"disabled_gate_pass"`
	FullGatePass       bool    `json:"full_gate_pass"`
	Spans              int     `json:"spans"`
	DroppedSpans       uint64  `json:"dropped_spans"`
}

// Trace overhead gates: disabled shares the 1% "off costs nothing"
// budget with the recorder and the observability plane; full tracing
// shares the 10% enabled-instrumentation budget.
const (
	traceDisabledGatePct = 1.0
	traceFullGatePct     = 10.0
)

// traceBench runs the tracing overhead study and records the floors
// in BENCH_trace.json.
func traceBench(reps int, outPath string) error {
	art, gateErr := traceStudyRun(reps)
	if art.Reps == 0 {
		return gateErr
	}
	if outPath != "" {
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return gateErr
}

// traceGateScore is an attempt's worst gate statistic, each
// normalized by its threshold, so one number ranks attempts whose two
// gates drift independently.
func traceGateScore(r *experiments.TraceOverheadResult) float64 {
	d := r.DisabledOverheadPct() / traceDisabledGatePct
	f := r.FullOverheadPct() / traceFullGatePct
	if d > f {
		return d
	}
	return f
}

// traceStudyRun runs the study — retrying up to obsvGateAttempts
// times, keeping the attempt with the best worst-gate score, because
// both statistics sit near their thresholds on a noisy host — prints
// it and checks both gates. A full run that collected no spans is a
// failure, not a fast run. The artifact is returned even when a gate
// fails.
func traceStudyRun(reps int) (traceArtifact, error) {
	var res *experiments.TraceOverheadResult
	for attempt := 1; attempt <= obsvGateAttempts; attempt++ {
		r, err := experiments.TraceOverheadStudy(reps)
		if err != nil {
			return traceArtifact{}, err
		}
		if res == nil || traceGateScore(r) < traceGateScore(res) {
			res = r
		}
		if traceGateScore(res) <= 1 {
			break
		}
		fmt.Printf("trace gate attempt %d/%d: disabled %+.2f%%, full %+.2f%%, retrying\n",
			attempt, obsvGateAttempts, r.DisabledOverheadPct(), r.FullOverheadPct())
	}
	fmt.Println(res.Render())

	art := traceArtifact{
		Reps:               res.Reps,
		BaselineMS:         res.BaselineMS,
		DisabledMS:         res.DisabledMS,
		SampledMS:          res.SampledMS,
		FullMS:             res.FullMS,
		DisabledOverheadPc: res.DisabledOverheadPct(),
		SampledOverheadPc:  res.SampledOverheadPct(),
		FullOverheadPc:     res.FullOverheadPct(),
		DisabledGatePct:    traceDisabledGatePct,
		FullGatePct:        traceFullGatePct,
		DisabledGatePass:   res.DisabledOverheadPct() <= traceDisabledGatePct,
		FullGatePass:       res.FullOverheadPct() <= traceFullGatePct,
		Spans:              res.Spans,
		DroppedSpans:       res.Dropped,
	}
	fmt.Printf("gates: disabled %.2f%% <= %.0f%% pass=%v, full %.2f%% <= %.0f%% pass=%v, sampled %.2f%% (reported, not gated)\n",
		art.DisabledOverheadPc, traceDisabledGatePct, art.DisabledGatePass,
		art.FullOverheadPc, traceFullGatePct, art.FullGatePass, art.SampledOverheadPc)
	if art.Spans == 0 || art.DroppedSpans != 0 {
		return art, fmt.Errorf("trace study sanity failed: %d spans, %d dropped from a fully traced fleet",
			art.Spans, art.DroppedSpans)
	}
	if !art.DisabledGatePass || !art.FullGatePass {
		return art, fmt.Errorf("trace overhead gate failed (disabled %+.2f%% gate %.0f%%, full %+.2f%% gate %.0f%%)",
			art.DisabledOverheadPc, traceDisabledGatePct, art.FullOverheadPc, traceFullGatePct)
	}
	return art, nil
}

// benchRegressionPct is the wall-clock regression budget benchcmp
// tolerates against the committed artifacts before failing.
const benchRegressionPct = 15.0

// readArtifact loads a committed BENCH_*.json file.
func readArtifact(path string, v any) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchcmp: %w (regenerate it with the matching study flag first)", err)
	}
	if err := json.Unmarshal(blob, v); err != nil {
		return fmt.Errorf("benchcmp: %s: %w", path, err)
	}
	return nil
}

// benchCompare reruns the fleet, telemetry and checker studies at the
// shape recorded in the committed BENCH_*.json artifacts and fails when
// any wall-clock number regressed by more than benchRegressionPct. The
// committed files are not rewritten — this is the CI regression gate,
// not the regeneration path.
func benchCompare() error {
	var regressions []string
	compareBy := func(name, unit string, fresh, committed float64) {
		if committed <= 0 {
			return
		}
		pct := (fresh - committed) / committed * 100
		status := "ok"
		if pct > benchRegressionPct {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1f%s vs committed %.1f%s (%+.1f%% > +%.0f%%)",
				name, fresh, unit, committed, unit, pct, benchRegressionPct))
		}
		fmt.Printf("benchcmp: %-24s %9.1f%s vs %9.1f%s committed  %+6.1f%%  %s\n",
			name, fresh, unit, committed, unit, pct, status)
	}
	compare := func(name string, fresh, committed float64) {
		compareBy(name, "ms", fresh, committed)
	}

	var oldFleet fleetArtifact
	if err := readArtifact("BENCH_fleet.json", &oldFleet); err != nil {
		return err
	}
	if len(oldFleet.Runs) == 0 {
		return fmt.Errorf("benchcmp: BENCH_fleet.json has no runs")
	}
	lastRun := oldFleet.Runs[len(oldFleet.Runs)-1]
	newFleet, err := fleetStudy(oldFleet.Devices, lastRun.Workers, lastRun.Shards, oldFleet.Seed, defaultFleetReps)
	if err != nil {
		return err
	}
	for _, nr := range newFleet.Runs {
		for _, or := range oldFleet.Runs {
			if or.Workers == nr.Workers {
				compare(fmt.Sprintf("fleet/%dworkers", nr.Workers), nr.WallMS, or.WallMS)
			}
		}
	}
	// The memory budget is a first-class gate: streaming keeps the
	// per-device allocation churn flat, and a >15% creep here is a
	// regression even when the wall clock still passes.
	compareBy("fleet/bytes_per_device", "B", newFleet.BytesPerDevice, oldFleet.BytesPerDevice)

	var oldTelem telemetryArtifact
	if err := readArtifact("BENCH_telemetry.json", &oldTelem); err != nil {
		return err
	}
	newTelem, err := telemetryStudyRun(oldTelem.Reps)
	if err != nil {
		return err
	}
	compare("telemetry/baseline", newTelem.BaselineMS, oldTelem.BaselineMS)
	compare("telemetry/enabled", newTelem.EnabledMS, oldTelem.EnabledMS)

	var oldCheck checkArtifact
	if err := readArtifact("BENCH_check.json", &oldCheck); err != nil {
		return err
	}
	newCheck, err := checkStudyRun(oldCheck.Reps)
	if err != nil {
		return err
	}
	compare("check/baseline", newCheck.BaselineMS, oldCheck.BaselineMS)
	compare("check/enabled", newCheck.EnabledMS, oldCheck.EnabledMS)

	var oldObsv obsvArtifact
	if err := readArtifact("BENCH_obsv.json", &oldObsv); err != nil {
		return err
	}
	newObsv, err := obsvStudyRun(oldObsv.Reps)
	if err != nil {
		return err
	}
	compare("obsv/baseline", newObsv.BaselineMS, oldObsv.BaselineMS)
	compare("obsv/enabled", newObsv.EnabledMS, oldObsv.EnabledMS)

	var oldTrace traceArtifact
	if err := readArtifact("BENCH_trace.json", &oldTrace); err != nil {
		return err
	}
	newTrace, err := traceStudyRun(oldTrace.Reps)
	if err != nil {
		return err
	}
	compare("trace/baseline", newTrace.BaselineMS, oldTrace.BaselineMS)
	compare("trace/full", newTrace.FullMS, oldTrace.FullMS)

	if err := corpusCompare(compare); err != nil {
		return err
	}

	if err := jobsCompare(compare); err != nil {
		return err
	}

	if len(regressions) > 0 {
		return fmt.Errorf("benchcmp: %d wall-clock regression(s):\n  %s",
			len(regressions), joinLines(regressions))
	}
	fmt.Println("benchcmp: no wall-clock regressions")
	return nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}

// energyParity reruns scene #1 with and without E-Android and reports
// the simulated battery drop of each (the paper's §VI-B check: "the
// decreased energy level is the same between Android and E-Android").
func energyParity() error {
	run := func(enabled bool) (float64, error) {
		w, err := scenario.NewWorld(device.Config{
			EAndroid: enabled,
			Policy:   accounting.BatteryStats,
		})
		if err != nil {
			return 0, err
		}
		if err := w.Scene1MessageFilm(); err != nil {
			return 0, err
		}
		return w.Dev.DrainedJ(), nil
	}
	with, err := run(true)
	if err != nil {
		return err
	}
	without, err := run(false)
	if err != nil {
		return err
	}
	fmt.Printf("Energy efficiency (paper §VI-B):\n")
	fmt.Printf("  scene #1 drain with    E-Android: %.3f J\n", with)
	fmt.Printf("  scene #1 drain without E-Android: %.3f J\n", without)
	if math.Abs(with-without) < 1e-9 {
		fmt.Println("  identical — E-Android draws nothing extra outside collateral events")
	} else {
		fmt.Printf("  DIFFER by %.3g J\n", with-without)
	}
	return nil
}
