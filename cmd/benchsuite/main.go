// Command benchsuite regenerates the paper's overhead study: the Table I
// / Figure 10 micro benchmark (50 reps per operation under three device
// configurations) and the Figure 11 AnTuTu comparison, plus the §VI-B
// energy-efficiency parity check.
//
// Usage:
//
//	benchsuite            # everything
//	benchsuite -micro     # Figure 10 only
//	benchsuite -antutu    # Figure 11 only
//	benchsuite -energy    # energy-efficiency check only
//	benchsuite -fleet 64 -workers 8   # fleet scaling study -> BENCH_fleet.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/accounting"
	"repro/internal/antutu"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/microbench"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	micro := fs.Bool("micro", false, "run the Figure 10 micro benchmark only")
	antutuOnly := fs.Bool("antutu", false, "run the Figure 11 AnTuTu benchmark only")
	energy := fs.Bool("energy", false, "run the energy-efficiency parity check only")
	reps := fs.Int("reps", microbench.DefaultReps, "micro benchmark repetitions")
	fleetN := fs.Int("fleet", 0, "run an N-device fleet scaling study")
	workers := fs.Int("workers", 0, "fleet worker count (0 = GOMAXPROCS)")
	fleetSeed := fs.Int64("fleet-seed", 42, "fleet seed (per-device seeds derive from it)")
	fleetOut := fs.String("fleet-out", "BENCH_fleet.json", "fleet artifact path (empty = don't write)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fleetN > 0 {
		return fleetBench(*fleetN, *workers, *fleetSeed, *fleetOut)
	}
	all := !*micro && !*antutuOnly && !*energy

	if all || *micro {
		r, err := experiments.Fig10WithReps(*reps)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if all || *antutuOnly {
		r, err := experiments.Fig11WithConfig(antutu.Config{})
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if all || *energy {
		if err := energyParity(); err != nil {
			return err
		}
	}
	return nil
}

// fleetArtifact is the BENCH_fleet.json schema: one scaling record per
// run, so successive PRs can track the fleet's perf trajectory.
type fleetArtifact struct {
	Devices       int           `json:"devices"`
	Seed          int64         `json:"seed"`
	Runs          []fleetTiming `json:"runs"`
	Speedup       float64       `json:"speedup"`
	Deterministic bool          `json:"deterministic"`
	Summary       fleetNumbers  `json:"summary"`
}

type fleetTiming struct {
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
}

type fleetNumbers struct {
	TotalDrainedJ float64 `json:"total_drained_j"`
	Attacks       int     `json:"attacks"`
	DetectionRate float64 `json:"detection_rate"`
	Failed        int     `json:"failed"`
}

// fleetBench runs the stealth-attack fleet twice — serial, then with
// the requested worker count — prints the aggregate, checks the two
// renders match byte for byte, and records timings in BENCH_fleet.json.
func fleetBench(devices, workers int, seed int64, outPath string) error {
	type runOut struct {
		timing  fleetTiming
		render  string
		numbers fleetNumbers
	}
	runAt := func(w int) (runOut, error) {
		start := time.Now()
		fr, err := experiments.FleetBenchStudy(devices, w, seed)
		if err != nil {
			return runOut{}, err
		}
		wall := time.Since(start)
		for _, r := range fr.Results {
			if r.Err != nil {
				return runOut{}, fmt.Errorf("device %d: %w", r.Index, r.Err)
			}
		}
		return runOut{
			timing: fleetTiming{Workers: fr.Workers, WallMS: float64(wall.Microseconds()) / 1000},
			render: fr.Render(),
			numbers: fleetNumbers{
				TotalDrainedJ: fr.Summary.TotalDrainedJ,
				Attacks:       fr.Summary.Attacks,
				DetectionRate: fr.Summary.DetectionRate(),
				Failed:        fr.Summary.Failed,
			},
		}, nil
	}

	serial, err := runAt(1)
	if err != nil {
		return err
	}
	parallel, err := runAt(workers)
	if err != nil {
		return err
	}
	fmt.Println(parallel.render)

	art := fleetArtifact{
		Devices:       devices,
		Seed:          seed,
		Runs:          []fleetTiming{serial.timing, parallel.timing},
		Speedup:       serial.timing.WallMS / parallel.timing.WallMS,
		Deterministic: serial.render == parallel.render,
		Summary:       parallel.numbers,
	}
	fmt.Printf("fleet: %d devices, workers %d vs 1: %.1fms vs %.1fms (%.2fx), deterministic=%v\n",
		devices, parallel.timing.Workers, parallel.timing.WallMS, serial.timing.WallMS,
		art.Speedup, art.Deterministic)
	if !art.Deterministic {
		return fmt.Errorf("fleet aggregate differs between worker counts — determinism bug")
	}
	if outPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// energyParity reruns scene #1 with and without E-Android and reports
// the simulated battery drop of each (the paper's §VI-B check: "the
// decreased energy level is the same between Android and E-Android").
func energyParity() error {
	run := func(enabled bool) (float64, error) {
		w, err := scenario.NewWorld(device.Config{
			EAndroid: enabled,
			Policy:   accounting.BatteryStats,
		})
		if err != nil {
			return 0, err
		}
		if err := w.Scene1MessageFilm(); err != nil {
			return 0, err
		}
		return w.Dev.DrainedJ(), nil
	}
	with, err := run(true)
	if err != nil {
		return err
	}
	without, err := run(false)
	if err != nil {
		return err
	}
	fmt.Printf("Energy efficiency (paper §VI-B):\n")
	fmt.Printf("  scene #1 drain with    E-Android: %.3f J\n", with)
	fmt.Printf("  scene #1 drain without E-Android: %.3f J\n", without)
	if math.Abs(with-without) < 1e-9 {
		fmt.Println("  identical — E-Android draws nothing extra outside collateral events")
	} else {
		fmt.Printf("  DIFFER by %.3g J\n", with-without)
	}
	return nil
}
