// Command benchsuite regenerates the paper's overhead study: the Table I
// / Figure 10 micro benchmark (50 reps per operation under three device
// configurations) and the Figure 11 AnTuTu comparison, plus the §VI-B
// energy-efficiency parity check.
//
// Usage:
//
//	benchsuite            # everything
//	benchsuite -micro     # Figure 10 only
//	benchsuite -antutu    # Figure 11 only
//	benchsuite -energy    # energy-efficiency check only
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/accounting"
	"repro/internal/antutu"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/microbench"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	micro := fs.Bool("micro", false, "run the Figure 10 micro benchmark only")
	antutuOnly := fs.Bool("antutu", false, "run the Figure 11 AnTuTu benchmark only")
	energy := fs.Bool("energy", false, "run the energy-efficiency parity check only")
	reps := fs.Int("reps", microbench.DefaultReps, "micro benchmark repetitions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	all := !*micro && !*antutuOnly && !*energy

	if all || *micro {
		r, err := experiments.Fig10WithReps(*reps)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if all || *antutuOnly {
		r, err := experiments.Fig11WithConfig(antutu.Config{})
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if all || *energy {
		if err := energyParity(); err != nil {
			return err
		}
	}
	return nil
}

// energyParity reruns scene #1 with and without E-Android and reports
// the simulated battery drop of each (the paper's §VI-B check: "the
// decreased energy level is the same between Android and E-Android").
func energyParity() error {
	run := func(enabled bool) (float64, error) {
		w, err := scenario.NewWorld(device.Config{
			EAndroid: enabled,
			Policy:   accounting.BatteryStats,
		})
		if err != nil {
			return 0, err
		}
		if err := w.Scene1MessageFilm(); err != nil {
			return 0, err
		}
		return w.Dev.DrainedJ(), nil
	}
	with, err := run(true)
	if err != nil {
		return err
	}
	without, err := run(false)
	if err != nil {
		return err
	}
	fmt.Printf("Energy efficiency (paper §VI-B):\n")
	fmt.Printf("  scene #1 drain with    E-Android: %.3f J\n", with)
	fmt.Printf("  scene #1 drain without E-Android: %.3f J\n", without)
	if math.Abs(with-without) < 1e-9 {
		fmt.Println("  identical — E-Android draws nothing extra outside collateral events")
	} else {
		fmt.Printf("  DIFFER by %.3g J\n", with-without)
	}
	return nil
}
