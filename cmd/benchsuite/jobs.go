package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/internal/jobs"
)

// jobsSpeedupGate: a cached resubmission must be at least this many
// times faster than the cold run of the same batch. The cache is a map
// lookup against a full fleet simulation, so 50x is a floor, not a
// stretch — falling under it means the control plane grew per-submit
// overhead that defeats its own caching.
const jobsSpeedupGate = 50.0

// defaultJobsReps: min-over-reps denoises the wall clocks the same way
// the fleet and telemetry studies do.
const defaultJobsReps = 3

// jobsArtifact is the BENCH_jobs.json schema: control-plane throughput
// cold vs cached over one batch of scenario jobs (one per corpus cell).
type jobsArtifact struct {
	Jobs             int     `json:"jobs"`
	Reps             int     `json:"reps"`
	ColdMS           float64 `json:"cold_ms"`
	CachedMS         float64 `json:"cached_ms"`
	ColdJobsPerSec   float64 `json:"cold_jobs_per_sec"`
	CachedJobsPerSec float64 `json:"cached_jobs_per_sec"`
	Speedup          float64 `json:"speedup"`
	HitRate          float64 `json:"hit_rate"`
	SpeedupGate      float64 `json:"speedup_gate"`
	GatePass         bool    `json:"gate_pass"`
}

// jobsStudySpecs is the study batch: one scenario job per corpus cell
// at the minimum horizon — 16 distinct content addresses.
func jobsStudySpecs() []jobs.Spec {
	cells := corpus.Cells()
	specs := make([]jobs.Spec, len(cells))
	for i, c := range cells {
		specs[i] = jobs.Spec{
			Kind:    jobs.KindScenario,
			Cell:    c.String(),
			Seed:    int64(100 + i),
			Horizon: jobs.Duration(time.Hour),
		}
	}
	return specs
}

// jobsBatch submits every spec to m and waits for all of them,
// returning the wall time and whether every job came from the cache.
func jobsBatch(m *jobs.Manager, specs []jobs.Spec) (time.Duration, bool, error) {
	start := time.Now()
	handles := make([]*jobs.Job, len(specs))
	for i, s := range specs {
		j, err := m.Submit(s)
		if err != nil {
			return 0, false, fmt.Errorf("submit %s: %w", s.Cell, err)
		}
		handles[i] = j
	}
	allCached := true
	for _, j := range handles {
		<-j.Done()
		st := j.Status()
		if st.State != jobs.StateDone {
			return 0, false, fmt.Errorf("job %s (%s): %s %s", j.ID, j.Spec.Cell, st.State, st.Error)
		}
		if !st.Cached {
			allCached = false
		}
	}
	return time.Since(start), allCached, nil
}

// jobsStudyRun measures the batch cold (fresh manager, empty cache)
// and cached (immediate resubmission), min-over-reps, and checks the
// speedup gate. The queue is sized to the batch so the study measures
// execution, not backpressure.
func jobsStudyRun(reps int) (jobsArtifact, error) {
	if reps <= 0 {
		reps = defaultJobsReps
	}
	specs := jobsStudySpecs()
	var coldMin, cachedMin time.Duration
	var hitRate float64
	for r := 0; r < reps; r++ {
		m := jobs.NewManager(jobs.Options{QueueDepth: len(specs)})
		cold, cached0, err := jobsBatch(m, specs)
		if err != nil {
			m.Close()
			return jobsArtifact{}, err
		}
		if cached0 {
			m.Close()
			return jobsArtifact{}, fmt.Errorf("cold batch reported cached on a fresh manager")
		}
		warm, cached1, err := jobsBatch(m, specs)
		if err != nil {
			m.Close()
			return jobsArtifact{}, err
		}
		if !cached1 {
			m.Close()
			return jobsArtifact{}, fmt.Errorf("resubmitted batch missed the cache")
		}
		cs := m.CacheStats()
		hitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
		m.Close()
		if r == 0 || cold < coldMin {
			coldMin = cold
		}
		if r == 0 || warm < cachedMin {
			cachedMin = warm
		}
	}

	coldMS := float64(coldMin) / float64(time.Millisecond)
	cachedMS := float64(cachedMin) / float64(time.Millisecond)
	art := jobsArtifact{
		Jobs:             len(specs),
		Reps:             reps,
		ColdMS:           coldMS,
		CachedMS:         cachedMS,
		ColdJobsPerSec:   float64(len(specs)) / coldMin.Seconds(),
		CachedJobsPerSec: float64(len(specs)) / cachedMin.Seconds(),
		Speedup:          coldMS / cachedMS,
		HitRate:          hitRate,
		SpeedupGate:      jobsSpeedupGate,
	}
	art.GatePass = art.Speedup >= jobsSpeedupGate
	fmt.Printf("=== Jobs control plane: cold vs content-addressed cache (%d jobs, min over %d reps) ===\n",
		art.Jobs, art.Reps)
	fmt.Printf("cold    %9.2fms  %8.1f jobs/s\n", art.ColdMS, art.ColdJobsPerSec)
	fmt.Printf("cached  %9.2fms  %8.1f jobs/s\n", art.CachedMS, art.CachedJobsPerSec)
	fmt.Printf("speedup %.0fx (gate >= %.0fx) pass=%v, hit rate %.2f\n",
		art.Speedup, art.SpeedupGate, art.GatePass, art.HitRate)
	if !art.GatePass {
		return art, fmt.Errorf("jobs cache speedup %.1fx under the %.0fx gate", art.Speedup, jobsSpeedupGate)
	}
	return art, nil
}

// jobsBench runs the study and records BENCH_jobs.json.
func jobsBench(reps int, outPath string) error {
	art, gateErr := jobsStudyRun(reps)
	if art.Jobs == 0 {
		return gateErr
	}
	if outPath != "" {
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return gateErr
}

// jobsCompare reruns the study at the committed shape for the
// -benchcmp gate: the cold wall must not regress and the speedup gate
// must still hold. The cached wall is microseconds and too noisy for a
// percentage budget; the speedup gate covers it with margin.
func jobsCompare(compare func(name string, fresh, committed float64)) error {
	var old jobsArtifact
	if err := readArtifact("BENCH_jobs.json", &old); err != nil {
		return err
	}
	fresh, err := jobsStudyRun(old.Reps)
	if err != nil {
		return err
	}
	compare("jobs/cold", fresh.ColdMS, old.ColdMS)
	return nil
}
