package main

import "testing"

func TestDefaultStudy(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithCategoriesAndSize(t *testing.T) {
	if err := run([]string{"-n", "200", "-seed", "7", "-categories"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadSize(t *testing.T) {
	if err := run([]string{"-n", "0"}); err == nil {
		t.Fatal("zero corpus accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestServeFlag: -serve exposes liveness/pprof and returns once the
// stop channel closes.
func TestServeFlag(t *testing.T) {
	serveStop = make(chan struct{})
	close(serveStop)
	defer func() { serveStop = nil }()
	if err := run([]string{"-n", "50", "-serve", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
}
