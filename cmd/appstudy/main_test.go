package main

import "testing"

func TestDefaultStudy(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithCategoriesAndSize(t *testing.T) {
	if err := run([]string{"-n", "200", "-seed", "7", "-categories"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadSize(t *testing.T) {
	if err := run([]string{"-n", "0"}); err == nil {
		t.Fatal("zero corpus accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
