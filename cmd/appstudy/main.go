// Command appstudy regenerates Figure 2: the Google Play corpus study.
// It generates 1,124 synthetic apps across 28 categories, serializes
// each app's AndroidManifest.xml, then runs the APKTool-equivalent
// extract-and-inspect pipeline over the documents.
//
// Usage:
//
//	appstudy
//	appstudy -n 5000 -seed 7
//	appstudy -categories        # also print the per-category breakdown
//	appstudy -n 100000 -serve 127.0.0.1:8080   # live /debug/pprof during big corpora
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/appstore"
	"repro/internal/serveutil"
)

// serveStop, when non-nil, ends a -serve wait as soon as it closes;
// the CLI tests use it in place of Ctrl-C.
var serveStop chan struct{}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "appstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("appstudy", flag.ContinueOnError)
	n := fs.Int("n", appstore.DefaultCorpusSize, "corpus size")
	seed := fs.Int64("seed", 42, "corpus seed")
	cats := fs.Bool("categories", false, "print per-category breakdown")
	serveAddr := fs.String("serve", "", "serve liveness and /debug/pprof on this address; blocks after the run until interrupted")
	serveJobs := fs.Bool("serve-jobs", false, "with -serve: mount the simulation-as-a-service control plane at /jobs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The corpus study has no device, so -serve exposes liveness and the
	// profiling endpoints — and, with -serve-jobs, the full simulation
	// control plane on the same mux.
	plane, err := serveutil.Start(serveutil.Options{
		Addr: *serveAddr, Name: "appstudy", Jobs: *serveJobs, Banner: os.Stderr,
	})
	if err != nil {
		return err
	}
	corpus, err := appstore.Generate(*n, *seed)
	if err != nil {
		return plane.Finish(err, serveStop)
	}
	study, err := appstore.Inspect(corpus)
	if err != nil {
		return plane.Finish(err, serveStop)
	}
	fmt.Printf("Figure 2: %d apps inspected\n", study.Total)
	fmt.Printf("  exported component: %4d (%.1f%%)\n", study.Exported, study.ExportedRate*100)
	fmt.Printf("  WAKE_LOCK:          %4d (%.1f%%)\n", study.WakeLock, study.WakeLockRate*100)
	fmt.Printf("  WRITE_SETTINGS:     %4d (%.1f%%)\n", study.WriteSettings, study.WriteSettingsRate*100)
	if *cats {
		names := make([]string, 0, len(study.PerCategory))
		for c := range study.PerCategory {
			names = append(names, c)
		}
		sort.Strings(names)
		fmt.Println("  per category:")
		for _, c := range names {
			fmt.Printf("    %-18s %d\n", c, study.PerCategory[c])
		}
	}
	return plane.Finish(nil, serveStop)
}
