package main

import "testing"

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestNoArgsShowsList(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig9a"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
