package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestNoArgsShowsList(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig9a"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestTelemetryExports(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	events := filepath.Join(dir, "events.jsonl")
	metrics := filepath.Join(dir, "metrics.txt")
	err := run([]string{"-exp", "fig9a",
		"-trace-out", trace, "-events-out", events, "-metrics-out", metrics})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &tf); err != nil {
		t.Fatalf("trace.json invalid: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace.json empty")
	}
	for _, p := range []string{events, metrics} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("export %s missing or empty (err=%v)", p, err)
		}
	}
}
