package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestNoArgsShowsList(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig9a"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestTelemetryExports(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	events := filepath.Join(dir, "events.jsonl")
	metrics := filepath.Join(dir, "metrics.txt")
	err := run([]string{"-exp", "fig9a",
		"-trace-out", trace, "-events-out", events, "-metrics-out", metrics})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &tf); err != nil {
		t.Fatalf("trace.json invalid: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace.json empty")
	}
	for _, p := range []string{events, metrics} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("export %s missing or empty (err=%v)", p, err)
		}
	}
}

// TestFlameExports: -flame-out / -flame-html write non-empty,
// well-formed renderings of the experiment's energy flame.
func TestFlameExports(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "flame.txt")
	html := filepath.Join(dir, "flame.html")
	if err := run([]string{"-exp", "fig9a", "-flame-out", txt, "-flame-html", html}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 || !strings.Contains(string(blob), ";") {
		t.Fatalf("collapsed flame looks wrong: %q", blob)
	}
	page, err := os.ReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "<!DOCTYPE html>") {
		t.Fatalf("flame HTML missing doctype")
	}
}

// TestServeFlag: -serve starts the plane on an ephemeral port, runs the
// experiment, publishes, and shuts down when the stop channel closes.
func TestServeFlag(t *testing.T) {
	serveStop = make(chan struct{})
	close(serveStop)
	defer func() { serveStop = nil }()
	if err := run([]string{"-exp", "fig9a", "-serve", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
}

// TestServeJobsFlag: -serve-jobs mounts the jobs control plane on the
// same plane; without -serve it is a configuration error.
func TestServeJobsFlag(t *testing.T) {
	serveStop = make(chan struct{})
	close(serveStop)
	defer func() { serveStop = nil }()
	if err := run([]string{"-exp", "fig9a", "-serve", "127.0.0.1:0", "-serve-jobs"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig9a", "-serve-jobs"}); err == nil {
		t.Fatal("-serve-jobs without -serve accepted")
	}
}

// TestLogFlag: -log attaches the deterministic slog handler without
// disturbing the run.
func TestLogFlag(t *testing.T) {
	if err := run([]string{"-exp", "fig9a", "-log"}); err != nil {
		t.Fatal(err)
	}
}
