// Command eandroid-sim runs the paper's scenarios and prints the Android
// and E-Android battery views side by side.
//
// Usage:
//
//	eandroid-sim -list
//	eandroid-sim -exp fig9a
//	eandroid-sim -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eandroid-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eandroid-sim", flag.ContinueOnError)
	list := fs.Bool("list", false, "list available experiments")
	exp := fs.String("exp", "", "experiment id to run (or 'all')")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, s := range experiments.All() {
			fmt.Printf("  %-6s %s\n", s.ID, s.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with -exp <id>, or -exp all")
		}
		return nil
	}

	if *exp == "all" {
		for _, s := range experiments.All() {
			r, err := s.Run()
			if err != nil {
				return fmt.Errorf("%s: %w", s.ID, err)
			}
			fmt.Println(r.Render())
		}
		return nil
	}

	spec, err := experiments.ByID(*exp)
	if err != nil {
		return err
	}
	r, err := spec.Run()
	if err != nil {
		return err
	}
	fmt.Println(r.Render())
	return nil
}
