// Command eandroid-sim runs the paper's scenarios and prints the Android
// and E-Android battery views side by side.
//
// Usage:
//
//	eandroid-sim -list
//	eandroid-sim -exp fig9a
//	eandroid-sim -exp all
//	eandroid-sim -exp fig9a -trace                      # legacy text trace on stdout
//	eandroid-sim -exp fig9a -trace-out trace.json       # open in Perfetto
//	eandroid-sim -exp fig9a -events-out events.jsonl -metrics-out metrics.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eandroid-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eandroid-sim", flag.ContinueOnError)
	list := fs.Bool("list", false, "list available experiments")
	exp := fs.String("exp", "", "experiment id to run (or 'all')")
	trace := fs.Bool("trace", false, "print the kernel event trace to stdout (legacy text format)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto or chrome://tracing)")
	eventsOut := fs.String("events-out", "", "write the structured event stream as JSONL")
	metricsOut := fs.String("metrics-out", "", "write a plain-text metrics dump")
	checks := fs.Bool("check", true, "run the runtime invariant checker; any violation fails the run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Telemetry attaches to every serially-built experiment world; the
	// recorder routes the old stdout -trace callback and the structured
	// exports through one instrumentation path.
	var rec *telemetry.Recorder
	if *trace || *traceOut != "" || *eventsOut != "" || *metricsOut != "" {
		rec = telemetry.New(telemetry.Options{})
		scenario.SetWorldTelemetry(rec)
		defer scenario.SetWorldTelemetry(nil)
	}
	// The invariant checker rides the same world funnel; fail-fast, so a
	// conservation breach aborts the experiment instead of printing a
	// silently wrong figure.
	if *checks {
		scenario.SetWorldChecks(&check.Options{FailFast: true})
		defer scenario.SetWorldChecks(nil)
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, s := range experiments.All() {
			fmt.Printf("  %-6s %s\n", s.ID, s.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with -exp <id>, or -exp all")
		}
		return nil
	}

	if *exp == "all" {
		for _, s := range experiments.All() {
			r, err := s.Run()
			if err != nil {
				return fmt.Errorf("%s: %w", s.ID, err)
			}
			fmt.Println(r.Render())
		}
		return export(rec, *trace, *traceOut, *eventsOut, *metricsOut)
	}

	spec, err := experiments.ByID(*exp)
	if err != nil {
		return err
	}
	r, err := spec.Run()
	if err != nil {
		return err
	}
	fmt.Println(r.Render())
	return export(rec, *trace, *traceOut, *eventsOut, *metricsOut)
}

// export flushes the recorder to the requested sinks after a run.
func export(rec *telemetry.Recorder, trace bool, traceOut, eventsOut, metricsOut string) error {
	if rec == nil {
		return nil
	}
	if trace {
		if err := telemetry.WriteText(os.Stdout, rec.Events()); err != nil {
			return err
		}
	}
	return telemetry.ExportFiles(rec, traceOut, eventsOut, metricsOut)
}
