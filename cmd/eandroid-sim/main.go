// Command eandroid-sim runs the paper's scenarios and prints the Android
// and E-Android battery views side by side.
//
// Usage:
//
//	eandroid-sim -list
//	eandroid-sim -exp fig9a
//	eandroid-sim -exp all
//	eandroid-sim -exp fig9a -trace                      # legacy text trace on stdout
//	eandroid-sim -exp fig9a -trace-out trace.json       # open in Perfetto
//	eandroid-sim -exp fig9a -events-out events.jsonl -metrics-out metrics.txt
//	eandroid-sim -exp fig9a -flame-out flame.txt -flame-html flame.html
//	eandroid-sim -exp all -serve 127.0.0.1:8080         # live metrics/flame/pprof, Ctrl-C to stop
//	eandroid-sim -exp fig9a -log                        # structured logs on stderr
//	eandroid-sim -fleet 10000 -workers 8 -shards 8      # streaming population fleet, merged summary only
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/check"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/fleet/population"
	"repro/internal/obsv"
	"repro/internal/scenario"
	"repro/internal/serveutil"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eandroid-sim:", err)
		os.Exit(1)
	}
}

// serveStop, when non-nil, ends a -serve wait as soon as it closes;
// the CLI tests use it in place of Ctrl-C.
var serveStop chan struct{}

func run(args []string) error {
	fs := flag.NewFlagSet("eandroid-sim", flag.ContinueOnError)
	list := fs.Bool("list", false, "list available experiments")
	exp := fs.String("exp", "", "experiment id to run (or 'all')")
	trace := fs.Bool("trace", false, "print the kernel event trace to stdout (legacy text format)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto or chrome://tracing)")
	eventsOut := fs.String("events-out", "", "write the structured event stream as JSONL")
	metricsOut := fs.String("metrics-out", "", "write a plain-text metrics dump")
	flameOut := fs.String("flame-out", "", "write the energy flame graph as collapsed stacks (Brendan Gregg format)")
	flameHTML := fs.String("flame-html", "", "write the energy flame graph as a self-contained HTML report")
	serveAddr := fs.String("serve", "", "serve live observability (metrics, flame, watchdog, pprof) on this address; blocks after the run until interrupted")
	serveJobs := fs.Bool("serve-jobs", false, "with -serve: mount the simulation-as-a-service control plane at /jobs")
	logFlag := fs.Bool("log", false, "emit structured logs (deterministic text format) on stderr")
	checks := fs.Bool("check", true, "run the runtime invariant checker; any violation fails the run")
	fleetN := fs.Int("fleet", 0, "run an N-device streaming population fleet (heterogeneous cohorts) and print the merged summary")
	fleetWorkers := fs.Int("workers", 0, "with -fleet: worker count (0 = GOMAXPROCS)")
	fleetShards := fs.Int("shards", 0, "with -fleet: accumulator shard count (0 = workers)")
	fleetSeed := fs.Int64("seed", 42, "with -fleet: fleet seed (per-device seeds derive from it)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The fleet mode bypasses the world funnel entirely: the fleet
	// runner builds its own per-device configs and streams results into
	// the bounded accumulator, so a 100k-device run fits in constant
	// memory no matter what the other flags would retain.
	if *fleetN > 0 {
		return runPopulationFleet(*fleetN, *fleetWorkers, *fleetShards, *fleetSeed)
	}

	// Telemetry attaches to every serially-built experiment world; the
	// recorder routes the old stdout -trace callback and the structured
	// exports through one instrumentation path. -serve implies it: the
	// /metrics and /watchdog endpoints are views over the recorder. All
	// cross-cutting wiring goes into one WorldOptions set, installed as
	// the process default just before the experiments run.
	var worldOpts scenario.WorldOptions
	var rec *telemetry.Recorder
	if *trace || *traceOut != "" || *eventsOut != "" || *metricsOut != "" || *serveAddr != "" {
		rec = telemetry.New(telemetry.Options{})
		worldOpts.Telemetry = rec
	}
	// The invariant checker rides the same world funnel; fail-fast, so a
	// conservation breach aborts the experiment instead of printing a
	// silently wrong figure.
	if *checks {
		worldOpts.Checks = &check.Options{FailFast: true}
	}
	if *logFlag {
		worldOpts.Logger = slog.New(obsv.NewLogHandler(os.Stderr, nil, nil))
	}

	// -serve starts the plane before the run so /healthz and pprof are
	// live while experiments execute and watchdog findings stream out
	// over SSE as they happen; snapshot and flame publish at the end.
	plane, err := serveutil.Start(serveutil.Options{
		Addr: *serveAddr, Name: "eandroid-sim", Jobs: *serveJobs, Banner: os.Stderr,
	})
	if err != nil {
		return err
	}
	var srv *obsv.Server
	if plane != nil {
		srv = plane.Server
	}

	// Flame collection (and, when serving, a live watchdog) attach to
	// every world through the construction hook. Worlds without an
	// enabled recorder simply skip the watchdog.
	var flames []*obsv.FlameCollector
	var watchdogs []*obsv.Watchdog
	if *flameOut != "" || *flameHTML != "" || srv != nil {
		worldOpts.Hook = func(dev *device.Device) {
			flames = append(flames, obsv.AttachFlame(dev))
			if wd, err := obsv.NewWatchdog(dev, obsv.WatchdogOptions{}); err == nil {
				if srv != nil {
					wd.Subscribe(srv.PublishFinding)
				}
				wd.Start()
				watchdogs = append(watchdogs, wd)
			}
		}
	}
	prevOpts := scenario.SetWorldOptions(worldOpts)
	defer scenario.SetWorldOptions(prevOpts)

	err = runExperiments(list, exp, rec, *trace, *traceOut, *eventsOut, *metricsOut)
	if err == nil {
		var wstats obsv.WindowStats
		for _, wd := range watchdogs {
			wd.Finish()
			st := wd.Stats()
			wstats.Total += st.Total
			wstats.Interactive += st.Interactive
			wstats.Judged += st.Judged
			wstats.Flagged += st.Flagged
		}
		if srv != nil && len(watchdogs) > 0 {
			// Surface the summed window counters as /metrics gauges —
			// the Stats() satellite of the observability plane.
			srv.PublishWindowStats(wstats)
		}
		err = exportFlames(flames, *flameOut, *flameHTML, *exp)
	}
	if srv != nil && err == nil {
		if rec != nil {
			srv.PublishSnapshot(rec.Metrics().Snapshot())
		}
		if len(flames) > 0 {
			srv.PublishFlame(obsv.MergeFlames(flameList(flames)...))
		}
	}
	return plane.Finish(err, serveStop)
}

// runPopulationFleet runs the default cohort mixture down the fleet's
// streaming path and prints the merged summary (plus the failure sample
// when devices failed). No per-device results are retained.
func runPopulationFleet(devices, workers, shards int, seed int64) error {
	pop := population.Default()
	spec, err := pop.FleetSpec(devices, workers, shards, seed)
	if err != nil {
		return err
	}
	fr, err := fleet.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Println(fr.Render())
	if fr.Summary.Failed > 0 {
		return fmt.Errorf("%d of %d devices failed", fr.Summary.Failed, fr.Summary.Devices)
	}
	return nil
}

// runExperiments is the pre-obsv body of the command: list, run one or
// all experiments, export telemetry.
func runExperiments(list *bool, exp *string, rec *telemetry.Recorder, trace bool, traceOut, eventsOut, metricsOut string) error {
	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, s := range experiments.All() {
			fmt.Printf("  %-6s %s\n", s.ID, s.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with -exp <id>, or -exp all")
		}
		return nil
	}

	if *exp == "all" {
		for _, s := range experiments.All() {
			r, err := s.Run()
			if err != nil {
				return fmt.Errorf("%s: %w", s.ID, err)
			}
			fmt.Println(r.Render())
		}
		return export(rec, trace, traceOut, eventsOut, metricsOut)
	}

	spec, err := experiments.ByID(*exp)
	if err != nil {
		return err
	}
	r, err := spec.Run()
	if err != nil {
		return err
	}
	fmt.Println(r.Render())
	return export(rec, trace, traceOut, eventsOut, metricsOut)
}

// flameList folds each collector once.
func flameList(cs []*obsv.FlameCollector) []*obsv.Flame {
	out := make([]*obsv.Flame, len(cs))
	for i, c := range cs {
		out[i] = c.Fold()
	}
	return out
}

// exportFlames merges every world's flame and writes the requested
// renderings.
func exportFlames(cs []*obsv.FlameCollector, outTxt, outHTML, title string) error {
	if outTxt == "" && outHTML == "" {
		return nil
	}
	merged := obsv.MergeFlames(flameList(cs)...)
	if outTxt != "" {
		f, err := os.Create(outTxt)
		if err != nil {
			return err
		}
		if err := merged.WriteCollapsed(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if outHTML != "" {
		f, err := os.Create(outHTML)
		if err != nil {
			return err
		}
		if err := merged.WriteHTML(f, "eandroid-sim "+title); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// export flushes the recorder to the requested sinks after a run.
func export(rec *telemetry.Recorder, trace bool, traceOut, eventsOut, metricsOut string) error {
	if rec == nil {
		return nil
	}
	if trace {
		if err := telemetry.WriteText(os.Stdout, rec.Events()); err != nil {
			return err
		}
	}
	return telemetry.ExportFiles(rec, traceOut, eventsOut, metricsOut)
}
