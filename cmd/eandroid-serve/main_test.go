package main

import "testing"

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestServeAndStop(t *testing.T) {
	serveStop = make(chan struct{})
	close(serveStop)
	defer func() { serveStop = nil }()
	if err := run([]string{"-addr", "127.0.0.1:0", "-runners", "1", "-queue", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAddrRejected(t *testing.T) {
	// The daemon is nothing but the control plane; an empty address is
	// a configuration error, not a silent no-op.
	if err := run([]string{"-addr", ""}); err == nil {
		t.Fatal("empty -addr accepted")
	}
}
