// Command eandroid-serve is the standalone simulation-as-a-service
// daemon: the full observability plane plus the jobs control plane,
// with nothing to run locally — all work arrives over HTTP.
//
// Usage:
//
//	eandroid-serve -addr 127.0.0.1:8080
//	eandroid-serve -addr :8080 -runners 4 -queue 32 -cache-mb 128
//	eandroid-serve -addr :8080 -max-devices 64 -max-sim-hours 512 -max-wall 1m
//
// Submit work:
//
//	curl -s :8080/jobs -d '{"kind":"scenario","cell":"gamer/coordinated-collateral","seed":7}'
//	curl -s :8080/jobs/j1                       # status
//	curl -N :8080/jobs/j1/events                # SSE progress
//	curl -s :8080/jobs/j1/artifacts/flame.html  # artifacts once done
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/jobs"
	"repro/internal/serveutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eandroid-serve:", err)
		os.Exit(1)
	}
}

// serveStop, when non-nil, ends the serve wait as soon as it closes;
// the CLI tests use it in place of Ctrl-C.
var serveStop chan struct{}

func run(args []string) error {
	fs := flag.NewFlagSet("eandroid-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	runners := fs.Int("runners", jobs.DefaultRunners, "concurrent job executions")
	queue := fs.Int("queue", jobs.DefaultQueueDepth, "queued-job bound; beyond it submissions get 429")
	cacheMB := fs.Int64("cache-mb", jobs.DefaultCacheBytes>>20, "artifact cache budget in MiB")
	maxDevices := fs.Int("max-devices", jobs.DefaultMaxDevices, "per-job device bound")
	maxSimHours := fs.Float64("max-sim-hours", jobs.DefaultMaxSimHours, "per-job devices x horizon bound")
	maxWall := fs.Duration("max-wall", jobs.DefaultMaxWall, "per-job wall-clock deadline")
	workers := fs.Int("workers", 0, "fleet workers per job (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	plane, err := serveutil.Start(serveutil.Options{
		Addr:   *addr,
		Name:   "eandroid-serve",
		Jobs:   true,
		Banner: os.Stderr,
		JobsOptions: jobs.Options{
			Runners:    *runners,
			QueueDepth: *queue,
			CacheBytes: *cacheMB << 20,
			Limits: jobs.Limits{
				MaxDevices:  *maxDevices,
				MaxSimHours: *maxSimHours,
				MaxWall:     *maxWall,
				Workers:     *workers,
			},
		},
	})
	if err != nil {
		return err
	}
	lim := plane.Manager.Limits()
	fmt.Fprintf(os.Stderr, "eandroid-serve: %d runners, queue %d, cache %d MiB; per-job limits: %d devices, %.0f sim-hours, %v wall\n",
		*runners, *queue, *cacheMB, lim.MaxDevices, lim.MaxSimHours, lim.MaxWall)
	return plane.Finish(nil, serveStop)
}
