// Command drainsim regenerates Figure 3: the battery depletion curves of
// the five attack/brightness configurations, with the screen forced on
// by a wakelock.
//
// Usage:
//
//	drainsim                 # summary + decile table
//	drainsim -step 10s       # finer integration step
//	drainsim -csv            # full per-percent series as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drainsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("drainsim", flag.ContinueOnError)
	step := fs.Duration("step", 30*time.Second, "integration step")
	csv := fs.Bool("csv", false, "emit the full per-percent series as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.Fig3WithStep(*step)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("config,percent,hours")
		for _, c := range res.Curves {
			for _, p := range c.Points {
				fmt.Printf("%s,%d,%.4f\n", c.Name, p.Percent, p.Hours)
			}
		}
		return nil
	}
	fmt.Println(res.Render())
	return nil
}
