// Command drainsim regenerates Figure 3: the battery depletion curves of
// the five attack/brightness configurations, with the screen forced on
// by a wakelock.
//
// Usage:
//
//	drainsim                 # summary + decile table
//	drainsim -step 10s       # finer integration step
//	drainsim -csv            # full per-percent series as CSV
//	drainsim -workers 5      # sweep the five configurations in parallel
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drainsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("drainsim", flag.ContinueOnError)
	step := fs.Duration("step", 30*time.Second, "integration step")
	csv := fs.Bool("csv", false, "emit the full per-percent series as CSV")
	workers := fs.Int("workers", 1, "run configurations concurrently on this many workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var res *experiments.Fig3Result
	var err error
	if *workers == 1 {
		res, err = experiments.Fig3WithStep(*step)
	} else {
		res, err = experiments.Fig3WithStepWorkers(*step, *workers)
	}
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println("config,percent,hours")
		for _, c := range res.Curves {
			for _, p := range c.Points {
				fmt.Printf("%s,%d,%.4f\n", c.Name, p.Percent, p.Hours)
			}
		}
		return nil
	}
	fmt.Println(res.Render())
	return nil
}
