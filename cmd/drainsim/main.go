// Command drainsim regenerates Figure 3: the battery depletion curves of
// the five attack/brightness configurations, with the screen forced on
// by a wakelock.
//
// Usage:
//
//	drainsim                 # summary + decile table
//	drainsim -step 10s       # finer integration step
//	drainsim -csv            # full per-percent series as CSV
//	drainsim -workers 5      # sweep the five configurations in parallel
//
// The parallel sweep runs on the fleet runner's streaming path: each
// configuration's drain curve lands in a worker-owned slice slot and
// the fleet folds everything else away as devices finish, so no
// per-device Result set is retained.
//
//	drainsim -trace-out t.json -metrics-out m.txt   # telemetry (serial only)
//	drainsim -serve 127.0.0.1:8080   # live metrics/pprof (serial only), Ctrl-C to stop
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/check"
	"repro/internal/experiments"
	"repro/internal/obsv"
	"repro/internal/scenario"
	"repro/internal/serveutil"
	"repro/internal/telemetry"
)

// serveStop, when non-nil, ends a -serve wait as soon as it closes;
// the CLI tests use it in place of Ctrl-C.
var serveStop chan struct{}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drainsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("drainsim", flag.ContinueOnError)
	step := fs.Duration("step", 30*time.Second, "integration step")
	csv := fs.Bool("csv", false, "emit the full per-percent series as CSV")
	workers := fs.Int("workers", 1, "run configurations concurrently on this many workers (0 = GOMAXPROCS)")
	trace := fs.Bool("trace", false, "print the kernel event trace to stdout (legacy text format)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto or chrome://tracing)")
	eventsOut := fs.String("events-out", "", "write the structured event stream as JSONL")
	metricsOut := fs.String("metrics-out", "", "write a plain-text metrics dump")
	checks := fs.Bool("check", true, "run the runtime invariant checker; any violation fails the serial sweep (the worker path checks passively per device)")
	serveAddr := fs.String("serve", "", "serve live observability (metrics, pprof) on this address; blocks after the run until interrupted")
	serveJobs := fs.Bool("serve-jobs", false, "with -serve: mount the simulation-as-a-service control plane at /jobs")
	logFlag := fs.Bool("log", false, "emit structured logs (deterministic text format) on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var worldOpts scenario.WorldOptions
	if *logFlag {
		worldOpts.Logger = slog.New(obsv.NewLogHandler(os.Stderr, nil, nil))
	}

	// Serial sweeps get a fail-fast checker through the world funnel;
	// the parallel path already builds checked devices per fleet spec.
	if *checks {
		worldOpts.Checks = &check.Options{FailFast: true}
	}

	// The shared world recorder is single-goroutine; the worker path
	// builds its devices off the serial funnel, so telemetry flags only
	// make sense for the serial sweep.
	var rec *telemetry.Recorder
	if *trace || *traceOut != "" || *eventsOut != "" || *metricsOut != "" || *serveAddr != "" {
		if *workers != 1 {
			return fmt.Errorf("telemetry flags require -workers 1 (the parallel sweep runs one recorder per device internally)")
		}
		rec = telemetry.New(telemetry.Options{})
		worldOpts.Telemetry = rec
	}
	prevOpts := scenario.SetWorldOptions(worldOpts)
	defer scenario.SetWorldOptions(prevOpts)

	// -serve starts the plane before the sweep (live /healthz and pprof)
	// and publishes the recorder's snapshot once the sweep is done.
	plane, perr := serveutil.Start(serveutil.Options{
		Addr: *serveAddr, Name: "drainsim", Jobs: *serveJobs, Banner: os.Stderr,
	})
	if perr != nil {
		return perr
	}

	var res *experiments.Fig3Result
	var err error
	if *workers == 1 {
		res, err = experiments.Fig3WithStep(*step)
	} else {
		res, err = experiments.Fig3WithStepWorkers(*step, *workers)
	}
	if err != nil {
		return plane.Finish(err, serveStop)
	}
	if rec != nil {
		if *trace {
			if err := telemetry.WriteText(os.Stdout, rec.Events()); err != nil {
				return plane.Finish(err, serveStop)
			}
		}
		if err := telemetry.ExportFiles(rec, *traceOut, *eventsOut, *metricsOut); err != nil {
			return plane.Finish(err, serveStop)
		}
	}
	if *csv {
		fmt.Println("config,percent,hours")
		for _, c := range res.Curves {
			for _, p := range c.Points {
				fmt.Printf("%s,%d,%.4f\n", c.Name, p.Percent, p.Hours)
			}
		}
	} else {
		fmt.Println(res.Render())
	}
	if plane != nil {
		plane.Server.PublishSnapshot(rec.Metrics().Snapshot())
	}
	return plane.Finish(nil, serveStop)
}
