// Command drainsim regenerates Figure 3: the battery depletion curves of
// the five attack/brightness configurations, with the screen forced on
// by a wakelock.
//
// Usage:
//
//	drainsim                 # summary + decile table
//	drainsim -step 10s       # finer integration step
//	drainsim -csv            # full per-percent series as CSV
//	drainsim -workers 5      # sweep the five configurations in parallel
//	drainsim -trace-out t.json -metrics-out m.txt   # telemetry (serial only)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/check"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drainsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("drainsim", flag.ContinueOnError)
	step := fs.Duration("step", 30*time.Second, "integration step")
	csv := fs.Bool("csv", false, "emit the full per-percent series as CSV")
	workers := fs.Int("workers", 1, "run configurations concurrently on this many workers (0 = GOMAXPROCS)")
	trace := fs.Bool("trace", false, "print the kernel event trace to stdout (legacy text format)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto or chrome://tracing)")
	eventsOut := fs.String("events-out", "", "write the structured event stream as JSONL")
	metricsOut := fs.String("metrics-out", "", "write a plain-text metrics dump")
	checks := fs.Bool("check", true, "run the runtime invariant checker; any violation fails the serial sweep (the worker path checks passively per device)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Serial sweeps get a fail-fast checker through the world funnel;
	// the parallel path already builds checked devices per fleet spec.
	if *checks {
		scenario.SetWorldChecks(&check.Options{FailFast: true})
		defer scenario.SetWorldChecks(nil)
	}

	// The shared world recorder is single-goroutine; the worker path
	// builds its devices off the serial funnel, so telemetry flags only
	// make sense for the serial sweep.
	var rec *telemetry.Recorder
	if *trace || *traceOut != "" || *eventsOut != "" || *metricsOut != "" {
		if *workers != 1 {
			return fmt.Errorf("telemetry flags require -workers 1 (the parallel sweep runs one recorder per device internally)")
		}
		rec = telemetry.New(telemetry.Options{})
		scenario.SetWorldTelemetry(rec)
		defer scenario.SetWorldTelemetry(nil)
	}

	var res *experiments.Fig3Result
	var err error
	if *workers == 1 {
		res, err = experiments.Fig3WithStep(*step)
	} else {
		res, err = experiments.Fig3WithStepWorkers(*step, *workers)
	}
	if err != nil {
		return err
	}
	if rec != nil {
		if *trace {
			if err := telemetry.WriteText(os.Stdout, rec.Events()); err != nil {
				return err
			}
		}
		if err := telemetry.ExportFiles(rec, *traceOut, *eventsOut, *metricsOut); err != nil {
			return err
		}
	}
	if *csv {
		fmt.Println("config,percent,hours")
		for _, c := range res.Curves {
			for _, p := range c.Points {
				fmt.Printf("%s,%d,%.4f\n", c.Name, p.Percent, p.Hours)
			}
		}
		return nil
	}
	fmt.Println(res.Render())
	return nil
}
