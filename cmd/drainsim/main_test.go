package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSummary(t *testing.T) {
	if err := run([]string{"-step", "15m"}); err != nil {
		t.Fatal(err)
	}
}

func TestCSV(t *testing.T) {
	if err := run([]string{"-step", "15m", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelWorkers(t *testing.T) {
	if err := run([]string{"-step", "15m", "-workers", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadStep(t *testing.T) {
	if err := run([]string{"-step", "-5s"}); err == nil {
		t.Fatal("negative step accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestTelemetryFlagsRequireSerialSweep(t *testing.T) {
	err := run([]string{"-workers", "2", "-trace-out", filepath.Join(t.TempDir(), "t.json")})
	if err == nil || !strings.Contains(err.Error(), "-workers 1") {
		t.Fatalf("run = %v, want telemetry/workers conflict error", err)
	}
}

func TestTelemetryExports(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.txt")
	if err := run([]string{"-step", "15m", "-trace-out", trace, "-metrics-out", metrics}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{trace, metrics} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("export %s missing or empty (err=%v)", p, err)
		}
	}
}

// TestServeFlag: -serve implies telemetry, publishes the sweep's
// snapshot and returns once the stop channel closes.
func TestServeFlag(t *testing.T) {
	serveStop = make(chan struct{})
	close(serveStop)
	defer func() { serveStop = nil }()
	if err := run([]string{"-step", "15m", "-serve", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
}

// TestServeRequiresSerialSweep: -serve rides the shared world recorder,
// which the parallel sweep cannot use.
func TestServeRequiresSerialSweep(t *testing.T) {
	err := run([]string{"-workers", "2", "-serve", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "-workers 1") {
		t.Fatalf("run = %v, want workers conflict error", err)
	}
}
