package main

import "testing"

func TestSummary(t *testing.T) {
	if err := run([]string{"-step", "15m"}); err != nil {
		t.Fatal(err)
	}
}

func TestCSV(t *testing.T) {
	if err := run([]string{"-step", "15m", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelWorkers(t *testing.T) {
	if err := run([]string{"-step", "15m", "-workers", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadStep(t *testing.T) {
	if err := run([]string{"-step", "-5s"}); err == nil {
		t.Fatal("negative step accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
