package eandroid_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	eandroid "repro"
)

// TestPublicObservability exercises the observability re-exports end to
// end: a flame collector and watchdog attached through the root API, a
// Prometheus rendering of the recorder's snapshot, and a live server
// round-trip on an ephemeral port.
func TestPublicObservability(t *testing.T) {
	rec := eandroid.NewTelemetry(eandroid.TelemetryOptions{})
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true, Telemetry: rec})
	fc := eandroid.AttachFlame(dev)
	wd, err := eandroid.NewWatchdog(dev, eandroid.WatchdogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wd.Start()

	victim, _ := installPair(t, dev)
	if _, err := dev.Activities.UserStartApp("com.pub.victim"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	_ = victim

	// A benign, user-started run must stay clean.
	if f := wd.Finish(); len(f) != 0 {
		t.Fatalf("benign run flagged: %v", f)
	}

	// The flame graph conserves energy: folded joules == drained joules.
	flame := fc.Fold()
	if got, want := flame.TotalJ(), dev.DrainedJ(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("flame total %.3f J, drained %.3f J", got, want)
	}
	var collapsed strings.Builder
	if err := flame.WriteCollapsed(&collapsed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(collapsed.String(), "screen;Screen;(display)") {
		t.Fatalf("collapsed stacks missing screen row:\n%s", collapsed.String())
	}

	var prom strings.Builder
	snap := rec.Metrics().Snapshot()
	if err := eandroid.WritePrometheus(&prom, snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "hw_mw_system") {
		t.Fatalf("prometheus output missing metrics:\n%s", prom.String())
	}

	srv := eandroid.NewObsvServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	srv.PublishSnapshot(snap)
	srv.PublishFlame(eandroid.MergeFlames(flame))
	for path, want := range map[string]string{
		"/healthz":   "ok",
		"/metrics":   "hw_mw_system",
		"/flame.txt": "screen;Screen;(display)",
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), want) {
			t.Fatalf("%s: status %d, body %q", path, resp.StatusCode, body)
		}
	}
}
