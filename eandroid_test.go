package eandroid_test

import (
	"strings"
	"testing"
	"time"

	eandroid "repro"
)

func installPair(t *testing.T, dev *eandroid.Device) (victim, mal *eandroid.App) {
	t.Helper()
	victim, err := dev.Packages.Install(
		eandroid.NewManifest("com.pub.victim", "Victim").
			Permission(eandroid.PermWakeLock).
			Activity("Main", true).
			Service("Work", true).
			MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.SetWorkload("Main", eandroid.Workload{CPUActive: 0.3, CPUBackground: 0.05}); err != nil {
		t.Fatal(err)
	}
	mal, err = dev.Packages.Install(
		eandroid.NewManifest("com.pub.mal", "Mal").
			Permission(eandroid.PermWakeLock, eandroid.PermWriteSettings).
			Activity("Main", true).
			MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return victim, mal
}

func TestZeroConfigDeviceWorks(t *testing.T) {
	dev, err := eandroid.New(eandroid.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dev.EAndroid != nil {
		t.Fatal("monitor should be nil by default")
	}
	if err := dev.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if dev.DrainedJ() <= 0 {
		t.Fatal("idle device should still drain")
	}
	if !strings.Contains(dev.EAndroidView(), "disabled") ||
		!strings.Contains(dev.AttackView(), "disabled") {
		t.Fatal("disabled monitor should render a notice")
	}
}

func TestPublicAttackFlow(t *testing.T) {
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true})
	victim, mal := installPair(t, dev)
	if _, err := dev.Activities.UserStartApp("com.pub.mal"); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.StartActivity(mal.UID, "com.pub.victim/Main"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	attacks := dev.EAndroid.Attacks()
	if len(attacks) != 1 || attacks[0].Vector != eandroid.VectorActivity {
		t.Fatalf("attacks = %v", attacks)
	}
	bd := dev.EAndroid.BreakdownFor(mal.UID, dev.Android.AppJ(mal.UID))
	if bd.TotalJ <= bd.OriginalJ {
		t.Fatal("collateral missing from breakdown")
	}
	view := dev.EAndroidView()
	if !strings.Contains(view, "+ Victim") {
		t.Fatalf("view should itemize collateral:\n%s", view)
	}
	_ = victim
}

func TestPublicServiceAndWakelockFlow(t *testing.T) {
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true, Policy: eandroid.PowerTutor})
	victim, mal := installPair(t, dev)
	if _, err := dev.StartService(victim.UID, "com.pub.victim/Work"); err != nil {
		t.Fatal(err)
	}
	conn, err := dev.BindService(mal.UID, "com.pub.victim/Work")
	if err != nil {
		t.Fatal(err)
	}
	if !conn.Bound() {
		t.Fatal("connection should be bound")
	}
	wl, err := dev.Power.Acquire(mal.UID, eandroid.ScreenBrightWakeLock, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := wl.Release(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Services.Unbind(conn); err != nil {
		t.Fatal(err)
	}
	var haveBind, haveWakelock bool
	for _, a := range dev.EAndroid.Attacks() {
		switch a.Vector {
		case eandroid.VectorServiceBind:
			haveBind = true
		case eandroid.VectorWakelock:
			haveWakelock = true
		}
		if a.Active {
			t.Fatalf("attack still active after teardown: %v", a)
		}
	}
	if !haveBind || !haveWakelock {
		t.Fatalf("missing vectors: bind=%v wakelock=%v", haveBind, haveWakelock)
	}
}

func TestTransparentOverlayPublicAPI(t *testing.T) {
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true})
	_, mal := installPair(t, dev)
	if _, err := dev.Activities.UserStartApp("com.pub.victim"); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.StartActivity(mal.UID, "com.pub.mal/Main",
		eandroid.TransparentActivity()); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range dev.EAndroid.Attacks() {
		if a.Vector == eandroid.VectorInterrupt {
			found = true
		}
	}
	if !found {
		t.Fatal("transparent overlay should register an interrupt attack")
	}
}

func TestConfigOverrides(t *testing.T) {
	dev := eandroid.MustNew(eandroid.Config{
		EAndroid:      true,
		MonitorMode:   eandroid.FrameworkOnly,
		Policy:        eandroid.PowerTutor,
		BatteryJ:      1000,
		Profile:       eandroid.Nexus4Profile(),
		ScreenTimeout: 5 * time.Second,
	})
	if dev.EAndroid.Mode() != eandroid.FrameworkOnly {
		t.Fatal("mode override lost")
	}
	if dev.Battery.CapacityJ() != 1000 {
		t.Fatal("battery override lost")
	}
	if err := dev.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if dev.Power.ScreenOn() {
		t.Fatal("screen timeout override lost")
	}
}

func TestScheduledActions(t *testing.T) {
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true})
	victim, mal := installPair(t, dev)
	_ = victim
	fired := false
	dev.At(10*time.Second, "malware-start", func() {
		fired = true
		if _, err := dev.StartActivity(mal.UID, "com.pub.victim/Main"); err != nil {
			t.Error(err)
		}
	})
	if err := dev.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("scheduled action did not fire")
	}
	if len(dev.EAndroid.Attacks()) != 1 {
		t.Fatal("scheduled attack not recorded")
	}
}

func TestPublicUnlockAndReport(t *testing.T) {
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true})
	_, mal := installPair(t, dev)
	_ = mal
	if err := dev.Run(45 * time.Second); err != nil {
		t.Fatal(err)
	}
	if dev.Power.ScreenOn() {
		t.Fatal("screen should have timed out")
	}
	if _, err := dev.UserUnlock(); err != nil {
		t.Fatal(err)
	}
	if !dev.Power.ScreenOn() {
		t.Fatal("unlock should light the screen")
	}
	rep := dev.Report()
	if !strings.Contains(rep, "battery:") {
		t.Fatalf("report malformed:\n%s", rep)
	}
}

func TestPublicChargeSplitPolicy(t *testing.T) {
	dev := eandroid.MustNew(eandroid.Config{
		EAndroid:         true,
		CollateralPolicy: eandroid.ChargeSplit,
	})
	if dev.EAndroid.ChargePolicy() != eandroid.ChargeSplit {
		t.Fatal("charge policy override lost")
	}
}

func TestPublicProviderAndNetwork(t *testing.T) {
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true})
	owner, err := dev.Packages.Install(
		eandroid.NewManifest("com.data", "Data").
			Provider("P", true).
			MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	caller, err := dev.Packages.Install(
		eandroid.NewManifest("com.call", "Call").
			Activity("Main", true).
			MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Providers.Query(caller.UID, "com.data/P"); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Network.SendTo(caller.UID, owner.UID, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range dev.EAndroid.Attacks() {
		if a.Vector == eandroid.VectorProvider {
			found = true
		}
	}
	if !found {
		t.Fatal("provider vector missing from public flow")
	}
}
