// Camera-message: the paper's motivating normal scenario (Figures 1 and
// 9a). Bob opens the Message app, films a 30-second video through the
// Camera app via an implicit VIDEO_CAPTURE intent, and the two battery
// interfaces disagree about who spent the energy.
package main

import (
	"fmt"
	"log"
	"time"

	eandroid "repro"
)

const (
	actionVideoCapture = "android.media.action.VIDEO_CAPTURE"
	categoryDefault    = "android.intent.category.DEFAULT"
)

func main() {
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true})

	message, err := dev.Packages.Install(
		eandroid.NewManifest("com.android.message", "Message").
			Activity("Main", true).
			MustBuild())
	if err != nil {
		log.Fatal(err)
	}
	if err := message.SetWorkload("Main", eandroid.Workload{
		CPUActive: 0.25, CPUBackground: 0.02,
	}); err != nil {
		log.Fatal(err)
	}

	camera, err := dev.Packages.Install(
		eandroid.NewManifest("com.android.camera", "Camera").
			Activity("VideoActivity", true, eandroid.IntentFilter{
				Actions:    []string{actionVideoCapture},
				Categories: []string{categoryDefault},
			}).
			MustBuild())
	if err != nil {
		log.Fatal(err)
	}
	if err := camera.SetWorkload("VideoActivity", eandroid.Workload{
		CPUActive: 0.5, Camera: true,
	}); err != nil {
		log.Fatal(err)
	}

	// Bob opens Message and chats for 30 seconds.
	if _, err := dev.Activities.UserStartApp("com.android.message"); err != nil {
		log.Fatal(err)
	}
	if err := dev.Run(30 * time.Second); err != nil {
		log.Fatal(err)
	}

	// Bob taps "Record Video": Message sends an implicit intent that the
	// Camera app serves. The tap is real user input, so the screen
	// timeout resets.
	dev.Power.UserActivity()
	_, rec, err := dev.Activities.StartActivityImplicit(eandroid.Intent{
		Sender:     message.UID,
		Action:     actionVideoCapture,
		Categories: []string{categoryDefault},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.Run(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	dev.Power.UserActivity()
	if err := dev.Activities.Finish(rec); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1 — Android's official view after filming in Message:")
	fmt.Println(dev.AndroidView())
	fmt.Println("Figure 9a — E-Android's revised view of the same hour:")
	fmt.Println(dev.EAndroidView())
	fmt.Printf("Battery: %.2f%% remaining, %.1f J drained\n",
		dev.BatteryPercent(), dev.DrainedJ())
}
