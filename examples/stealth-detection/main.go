// Stealth-detection: the full §V delivery story plus the defense
// comparison. The malware hides from recents, auto-launches from the
// unlock broadcast, hijacks the camera from the background — and three
// defenses look at the result: the stock battery interface (blind), a
// power-signature detector (blind: the malware's own trace is flat), and
// E-Android (names the culprit). Finally the user deletes the malware
// and the attack collapses.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/device"
	"repro/internal/powersig"
	"repro/internal/scenario"
)

func main() {
	w, err := scenario.NewWorld(device.Config{EAndroid: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.ForceScreenOn(); err != nil {
		log.Fatal(err)
	}

	// Train the power-signature detector on a benign window first.
	det, err := powersig.NewDetector(w.Dev.Engine, w.Dev.Meter, w.Dev.Packages, 0)
	if err != nil {
		log.Fatal(err)
	}
	det.Start()
	if err := w.Dev.Run(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := det.Train(); err != nil {
		log.Fatal(err)
	}

	// The user unlocks the phone; the hidden malware auto-launches its
	// attack and runs for a minute.
	if err := w.StealthAutoLaunch(60 * time.Second); err != nil {
		log.Fatal(err)
	}
	w.Dev.Flush()

	fmt.Println("=== after 60 s of stealth camera hijack ===")
	fmt.Printf("malware foreground time: %v (user never saw it)\n",
		w.Dev.Android.ForegroundTime(w.Malware.UID))

	fmt.Println("\n[1] stock battery interface:")
	fmt.Print(w.Dev.AndroidView())

	fmt.Println("\n[2] power-signature detector verdicts:")
	anomalous := det.Anomalous()
	if len(anomalous) == 0 {
		fmt.Println("  nothing flagged — the malware's own power trace is flat")
	}
	for _, uid := range anomalous {
		fmt.Printf("  flagged: %s (an innocent app doing the malware's work)\n",
			w.Dev.Packages.Label(uid))
	}

	fmt.Println("\n[3] E-Android:")
	fmt.Print(w.Dev.EAndroidView())
	fmt.Print(w.Dev.AttackView())

	// The user acts on E-Android's verdict.
	fmt.Println("\n=== user deletes FunGame ===")
	if err := w.Dev.Packages.Uninstall(scenario.PkgMalware); err != nil {
		log.Fatal(err)
	}
	if n := len(w.Dev.EAndroid.ActiveAttacks()); n != 0 {
		log.Fatalf("attacks survived uninstall: %d", n)
	}
	fmt.Println("all collateral attacks ended; device report:")
	fmt.Print(w.Dev.Report())
}
