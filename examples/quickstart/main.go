// Quickstart: build a simulated device with E-Android enabled, install a
// tiny "malware" app and a victim, let the malware start the victim's
// activity, and compare what the stock battery interface and E-Android's
// revised interface report.
package main

import (
	"fmt"
	"log"
	"time"

	eandroid "repro"
)

func main() {
	// A Nexus 4-like device with the complete E-Android monitor.
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true})

	// A victim app whose activity does real work in the foreground.
	victim, err := dev.Packages.Install(
		eandroid.NewManifest("com.example.victim", "Victim").
			Activity("Main", true).
			MustBuild())
	if err != nil {
		log.Fatal(err)
	}
	if err := victim.SetWorkload("Main", eandroid.Workload{
		CPUActive: 0.4, CPUBackground: 0.1,
	}); err != nil {
		log.Fatal(err)
	}

	// A nearly idle malware app.
	mal, err := dev.Packages.Install(
		eandroid.NewManifest("com.fun.game", "FunGame").
			Activity("Main", true).
			MustBuild())
	if err != nil {
		log.Fatal(err)
	}
	if err := mal.SetWorkload("Main", eandroid.Workload{CPUActive: 0.02}); err != nil {
		log.Fatal(err)
	}

	// The user opens the game; the game silently starts the victim and
	// shoves it into the background, where it keeps draining.
	if _, err := dev.Activities.UserStartApp("com.fun.game"); err != nil {
		log.Fatal(err)
	}
	if _, err := dev.StartActivity(mal.UID, "com.example.victim/Main"); err != nil {
		log.Fatal(err)
	}
	if err := dev.Activities.MoveAppToFront(mal.UID, "com.fun.game"); err != nil {
		log.Fatal(err)
	}
	if err := dev.Run(60 * time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("What stock Android shows (malware invisible):")
	fmt.Println(dev.AndroidView())
	fmt.Println("What E-Android shows (collateral energy attributed):")
	fmt.Println(dev.EAndroidView())
	fmt.Println(dev.AttackView())
}
