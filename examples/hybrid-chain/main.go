// Hybrid-chain: the paper's Figure 7 attack chain. App A (malware)
// binds app B's service; B starts an activity belonging to app C; C
// stealthily raises the screen brightness. E-Android superimposes B's,
// C's and the screen's energy onto A's collateral map, then releases the
// links one by one as the user takes back control.
package main

import (
	"fmt"
	"log"
	"time"

	eandroid "repro"
)

func main() {
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true})

	a, err := dev.Packages.Install(
		eandroid.NewManifest("com.chain.a", "AppA").
			Activity("Main", true).
			MustBuild())
	if err != nil {
		log.Fatal(err)
	}
	b, err := dev.Packages.Install(
		eandroid.NewManifest("com.chain.b", "AppB").
			Activity("Main", true).
			Service("Work", true).
			MustBuild())
	if err != nil {
		log.Fatal(err)
	}
	if err := b.SetWorkload("Work", eandroid.Workload{CPUActive: 0.3}); err != nil {
		log.Fatal(err)
	}
	c, err := dev.Packages.Install(
		eandroid.NewManifest("com.chain.c", "AppC").
			Permission(eandroid.PermWriteSettings).
			Activity("Main", true).
			MustBuild())
	if err != nil {
		log.Fatal(err)
	}
	if err := c.SetWorkload("Main", eandroid.Workload{CPUActive: 0.2, CPUBackground: 0.05}); err != nil {
		log.Fatal(err)
	}

	// Keep the screen on for the whole observation window, as in the
	// paper's experimental setup.
	if _, err := dev.Power.Acquire(dev.Activities.Launcher().UID,
		eandroid.ScreenBrightWakeLock, "experiment"); err != nil {
		log.Fatal(err)
	}

	step := func(what string, fn func() error) {
		fmt.Println(">>>", what)
		if err := fn(); err != nil {
			log.Fatal(err)
		}
		if err := dev.Run(10 * time.Second); err != nil {
			log.Fatal(err)
		}
	}

	var conn *eandroid.ServiceConnection
	step("user opens A; A binds B's service", func() error {
		if _, err := dev.Activities.UserStartApp("com.chain.a"); err != nil {
			return err
		}
		var err error
		conn, err = dev.BindService(a.UID, "com.chain.b/Work")
		return err
	})
	step("B starts C's activity", func() error {
		_, err := dev.StartActivity(b.UID, "com.chain.c/Main")
		return err
	})
	step("C raises brightness to 255", func() error {
		return dev.Display.SetBrightness(c.UID, eandroid.SourceApp, 255)
	})

	fmt.Println("Collateral maps while the whole chain is active:")
	fmt.Println(dev.AttackView())
	fmt.Println(dev.EAndroidView())

	step("user drags the brightness slider back (screen attack ends)", func() error {
		return dev.Display.SetBrightness(eandroid.UIDSystem, eandroid.SourceSystemUI, 102)
	})
	step("user opens B and C directly (activity attacks end)", func() error {
		if _, err := dev.Activities.UserStartApp("com.chain.c"); err != nil {
			return err
		}
		_, err := dev.Activities.UserStartApp("com.chain.b")
		return err
	})
	step("A unbinds (last link revoked)", func() error {
		return dev.Services.Unbind(conn)
	})

	fmt.Println("After the chain unwinds:")
	fmt.Println(dev.AttackView())
	fmt.Println(dev.EAndroidView())
}
