// Package eandroid is the public API of the E-Android reproduction: a
// deterministic discrete-event simulation of an Android-like device with
// pluggable energy accounting, the paper's six collateral energy
// attacks, and E-Android's collateral energy maps layered on top of two
// baseline attribution policies (Android BatteryStats-style and
// PowerTutor-style).
//
// Build a device, install apps, script behaviour against the simulated
// framework, run the virtual clock, and read energy views:
//
//	dev := eandroid.MustNew(eandroid.Config{EAndroid: true})
//	mal := dev.Packages.MustInstall(
//	    eandroid.NewManifest("com.mal", "Mal").Activity("Main", true).MustBuild())
//	...
//	dev.Run(60 * time.Second)
//	fmt.Print(dev.EAndroidView())
package eandroid

import (
	"context"

	"repro/internal/accounting"
	"repro/internal/activity"
	"repro/internal/app"
	"repro/internal/broadcast"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/display"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/intent"
	"repro/internal/jobs"
	"repro/internal/manifest"
	"repro/internal/obsv"
	"repro/internal/power"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Core device types.
type (
	// Config controls device construction; the zero value builds a
	// stock-Android device with BatteryStats accounting.
	Config = device.Config
	// Device is a fully wired simulated smartphone.
	Device = device.Device
)

// New builds and wires a device.
func New(cfg Config) (*Device, error) { return device.New(cfg) }

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config) *Device { return device.MustNew(cfg) }

// Identity and app-model types.
type (
	// UID identifies an installed app.
	UID = app.UID
	// App is one installed application.
	App = app.App
	// Workload is a component's hardware demand profile.
	Workload = app.Workload
	// Manifest describes an application's components and permissions.
	Manifest = manifest.Manifest
	// ManifestBuilder assembles manifests fluently.
	ManifestBuilder = manifest.Builder
	// IntentFilter declares implicit-intent matching rules.
	IntentFilter = manifest.IntentFilter
	// Intent is a request to start a component.
	Intent = intent.Intent
)

// NewManifest starts a manifest builder for the given package and label.
func NewManifest(pkg, label string) *ManifestBuilder {
	return manifest.NewBuilder(pkg, label)
}

// Pseudo-UIDs used in battery views.
const (
	UIDNone   = app.UIDNone
	UIDScreen = app.UIDScreen
	UIDSystem = app.UIDSystem
)

// Permission strings.
const (
	PermWakeLock      = manifest.PermWakeLock
	PermWriteSettings = manifest.PermWriteSettings
)

// Accounting policies.
const (
	// BatteryStats reports screen energy as a separate entry (Android's
	// official interface).
	BatteryStats = accounting.BatteryStats
	// PowerTutor charges screen energy to the foreground app.
	PowerTutor = accounting.PowerTutor
)

// E-Android monitor modes.
const (
	// FrameworkOnly records collateral events without the accounting
	// module.
	FrameworkOnly = core.FrameworkOnly
	// Complete enables full collateral accounting.
	Complete = core.Complete
)

// Wakelock types.
const (
	PartialWakeLock      = power.Partial
	ScreenDimWakeLock    = power.ScreenDim
	ScreenBrightWakeLock = power.ScreenBright
	FullWakeLock         = power.Full
)

// Display modes and change sources.
const (
	BrightnessManual = display.Manual
	BrightnessAuto   = display.Auto
	SourceApp        = display.SourceApp
	SourceSystemUI   = display.SourceSystemUI
)

// Attack vectors reported by the monitor.
const (
	VectorActivity     = core.VectorActivity
	VectorInterrupt    = core.VectorInterrupt
	VectorServiceStart = core.VectorServiceStart
	VectorServiceBind  = core.VectorServiceBind
	VectorScreen       = core.VectorScreen
	VectorWakelock     = core.VectorWakelock
	// VectorBroadcast is this reproduction's extension vector for
	// cross-app broadcasts (see DESIGN.md).
	VectorBroadcast = core.VectorBroadcast
	// VectorProvider is the extension vector for cross-app
	// content-provider queries (see DESIGN.md).
	VectorProvider = core.VectorProvider
)

// Collateral charge policies.
const (
	// ChargeFullToEach charges every driver the driven party's full
	// energy (the paper's policy).
	ChargeFullToEach = core.ChargeFullToEach
	// ChargeSplit divides the driven party's energy among the drivers.
	ChargeSplit = core.ChargeSplit
)

// Monitor-facing types.
type (
	// Attack is one collateral attack lifecycle record.
	Attack = core.Attack
	// MapEntry is one element of a collateral energy map.
	MapEntry = core.MapEntry
	// Breakdown is one revised-battery-interface row.
	Breakdown = core.Breakdown
)

// TransparentActivity marks a started activity as transparent (the
// overlay trick used by the paper's malware #4).
func TransparentActivity() activity.StartOption { return activity.Transparent() }

// Hardware profile helpers.
var (
	// Nexus4Profile is the default power model (linear CPU).
	Nexus4Profile = hw.Nexus4
	// Nexus4DVFSProfile enables the DVFS CPU ladder.
	Nexus4DVFSProfile = hw.Nexus4DVFS
)

// NexusBatteryJ is the default battery capacity in joules.
const NexusBatteryJ = hw.NexusBatteryJ

// Fleet API: run many independent devices concurrently (one
// single-threaded engine per goroutine) with per-device seeds derived
// from a fleet seed and order-stable aggregation. Execution streams:
// finished devices fold into a bounded sharded accumulator and are
// dropped, so fleet memory is O(workers + window), not O(devices).
// Set FleetSpec.RetainResults to keep the per-device slice, or
// FleetSpec.Stream to consume each result exactly once as it finishes.
type (
	// FleetSpec describes a fleet run: device count, worker and shard
	// bounds, fleet seed, config template, scenario func and horizon.
	FleetSpec = fleet.Spec
	// FleetResult is a completed fleet run: the merged summary, plus
	// per-device results sorted by index when RetainResults was set.
	FleetResult = fleet.FleetResult
	// FleetDeviceResult is the harvest of one device in the fleet.
	FleetDeviceResult = fleet.Result
	// FleetSummary is the fleet-level merge of all device results.
	FleetSummary = fleet.Summary
	// FleetProgress is one live per-device completion tick (fed to
	// FleetSpec.Progress from worker goroutines).
	FleetProgress = fleet.Progress
	// FleetFailure is one sampled device failure in a streaming
	// summary (FleetSummary.Failures keeps the first few).
	FleetFailure = fleet.Failure
)

// RunFleet executes spec's devices on a bounded worker pool. Per-device
// failures (including panics) are captured in the matching
// FleetDeviceResult.Err; ctx cancels dispatch and in-flight horizons.
func RunFleet(ctx context.Context, spec FleetSpec) (*FleetResult, error) {
	return fleet.Run(ctx, spec)
}

// FleetDeviceSeed reports the engine seed device i of a fleet would
// run with (splitmix64 derivation from the fleet seed).
func FleetDeviceSeed(fleetSeed int64, i int) int64 {
	return fleet.DeviceSeed(fleetSeed, i)
}

// Telemetry API: structured event tracing and metrics. Attach a
// recorder through Config.Telemetry (one per device — recorders are
// single-goroutine, like the engine they observe), or set
// FleetSpec.Telemetry to give every fleet device its own and read the
// order-stable merge from FleetResult.Metrics.
type (
	// TelemetryRecorder is the typed event tracer + metrics registry.
	TelemetryRecorder = telemetry.Recorder
	// TelemetryOptions configures a recorder (ring capacity, gating).
	TelemetryOptions = telemetry.Options
	// TelemetryEvent is one structured record.
	TelemetryEvent = telemetry.Event
	// TelemetryMetrics is a live instrument registry.
	TelemetryMetrics = telemetry.Metrics
	// TelemetrySnapshot is an order-stable freeze of a registry.
	TelemetrySnapshot = telemetry.Snapshot
)

// NewTelemetry builds a recorder for Config.Telemetry.
func NewTelemetry(opts TelemetryOptions) *TelemetryRecorder { return telemetry.New(opts) }

// Runtime invariant checking: set Config.Checks to attach a checker
// that validates energy conservation, battery bounds, lifecycle
// legality and aggregator consistency on every metering interval, with
// an optional differential oracle (a shadow sampled accountant checked
// against the exact ledger). Leave Config.Checks nil to let the
// EANDROID_CHECK environment variable decide. After a run, call
// Device.FinishChecks for the final audit and the violation list.
type (
	// CheckOptions configures the invariant checker.
	CheckOptions = check.Options
	// CheckViolation is one recorded invariant violation.
	CheckViolation = check.Violation
	// CheckInvariant identifies which invariant family a violation
	// belongs to.
	CheckInvariant = check.Invariant
)

// WriteTrace exports recorded events as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing).
var WriteTrace = telemetry.WriteTrace

// Observability API: the live plane layered over telemetry. ObsvServer
// is a stdlib-only HTTP surface (Prometheus /metrics, health probes,
// pprof, fleet/watchdog SSE, flame graphs); FlameCollector folds the
// meter's attribution stream into energy flame graphs; Watchdog is the
// streaming drain-anomaly detector (the paper's esDiagnose signal);
// LogHandler is a deterministic virtual-time slog handler for
// Config.Logger.
type (
	// ObsvServer is the live observability HTTP server.
	ObsvServer = obsv.Server
	// Flame is a folded energy flame graph (collapsed stacks).
	Flame = obsv.Flame
	// FlameCollector accumulates one device's attribution stream.
	FlameCollector = obsv.FlameCollector
	// Watchdog is the rolling-window drain-anomaly detector.
	Watchdog = obsv.Watchdog
	// WatchdogOptions configures a Watchdog (window, thresholds).
	WatchdogOptions = obsv.WatchdogOptions
	// WatchdogFinding is one anomaly the watchdog flagged.
	WatchdogFinding = obsv.Finding
	// LogHandler is the deterministic virtual-time slog handler.
	LogHandler = obsv.LogHandler
)

// Watchdog finding signal names.
const (
	SignalDrainSpike  = obsv.SignalDrainSpike
	SignalDeviceSpike = obsv.SignalDeviceSpike
	SignalDivergence  = obsv.SignalDivergence
)

// NewObsvServer builds an (unstarted) observability server; call
// Start(addr) to bind and AwaitShutdown to block until interrupted.
func NewObsvServer() *ObsvServer { return obsv.NewServer() }

// AttachFlame subscribes a flame collector to a device's meter; Fold it
// after the run (or merge several with MergeFlames).
func AttachFlame(dev *Device) *FlameCollector { return obsv.AttachFlame(dev) }

// MergeFlames sums several folded flames into one.
func MergeFlames(flames ...*Flame) *Flame { return obsv.MergeFlames(flames...) }

// NewWatchdog attaches a drain-anomaly watchdog to a device. The device
// needs an enabled telemetry recorder; call Start before the run and
// Finish after it.
func NewWatchdog(dev *Device, opts WatchdogOptions) (*Watchdog, error) {
	return obsv.NewWatchdog(dev, opts)
}

// WritePrometheus renders a telemetry snapshot in Prometheus text
// exposition format.
var WritePrometheus = obsv.WritePrometheus

// NewLogHandler builds the deterministic slog handler for Config.Logger
// (virtual-time timestamps via now; nil now omits timestamps, nil level
// means Info).
var NewLogHandler = obsv.NewLogHandler

// Service-facing aliases used by advanced callers.
type (
	// Service is one live service component instance.
	Service = service.Service
	// ServiceConnection is one live bindService link.
	ServiceConnection = service.Connection
	// Wakelock is a held wakelock registration.
	Wakelock = power.Wakelock
	// Activity is one live activity record.
	Activity = activity.Activity
	// BroadcastDelivery is one receiver invocation.
	BroadcastDelivery = broadcast.Delivery
)

// Jobs API: the simulation-as-a-service control plane layered over the
// fleet runner and scenario corpus. A JobManager owns a bounded queue
// and runner pool plus a content-addressed artifact cache; AttachJobs
// mounts its HTTP surface (POST /jobs, SSE progress, artifacts) on an
// observability server.
type (
	// JobManager runs submitted jobs and caches their artifacts.
	JobManager = jobs.Manager
	// JobManagerOptions sizes the runner pool, queue and cache.
	JobManagerOptions = jobs.Options
	// JobSpec describes what one job simulates (kind, cell, seed, shape).
	JobSpec = jobs.Spec
	// JobLimits are the server-side per-job resource bounds.
	JobLimits = jobs.Limits
	// Job is one submitted job (status, SSE events, artifacts).
	Job = jobs.Job
	// JobStatus is a job's JSON-renderable state.
	JobStatus = jobs.Status
	// JobArtifacts is a completed job's named output files.
	JobArtifacts = jobs.Artifacts
)

// Job kinds accepted in JobSpec.Kind.
const (
	JobKindScenario = jobs.KindScenario
	JobKindFleet    = jobs.KindFleet
	JobKindCorpus   = jobs.KindCorpus
)

// NewJobManager builds a running job manager; Close it when done.
func NewJobManager(opts JobManagerOptions) *JobManager { return jobs.NewManager(opts) }

// AttachJobs mounts a manager's HTTP surface under /jobs on an
// observability server, wires its counters into /metrics, and closes
// the manager on server shutdown.
var AttachJobs = jobs.Attach

// Causal tracing API: deterministic span trees across the whole stack
// (HTTP request → job → fleet shard → device → engine phases). Span
// IDs derive from splitmix64 seed chains rooted at a job's content
// address, so the exported tree is byte-identical across worker and
// shard counts; RED request metrics carry root span IDs as exemplars.
type (
	// Span is one unit of causal work (virtual-ns window, derived ID).
	Span = trace.Span
	// SpanID is a 64-bit derived span identifier (hex in JSON).
	SpanID = trace.SpanID
	// Tracer assembles one operation's span tree.
	Tracer = trace.Tracer
	// TraceConfig tunes sampling (SampleRate, Disabled).
	TraceConfig = trace.Config
	// TraceSummary is the live wall-clock view of one finished trace.
	TraceSummary = trace.Summary
	// FleetTrace threads a tracer through a fleet run (fleet.Spec.Trace).
	FleetTrace = trace.FleetTrace
	// DeviceTracer collects one sampled device's engine-phase spans.
	DeviceTracer = trace.DeviceTracer
	// REDMetrics aggregates request rate/errors/duration with exemplars.
	REDMetrics = trace.RED
)

// NewTracer builds a tracer rooted at a seed string (a job's content
// address); rootName labels the request span.
func NewTracer(seed, rootName string, cfg TraceConfig) *Tracer {
	return trace.New(seed, rootName, cfg)
}

// WriteChromeTrace exports a span tree as Chrome trace-event JSON
// (virtual-time only; loadable in chrome://tracing or Perfetto).
var WriteChromeTrace = trace.WriteChrome

// TraceRootID derives an operation's root span ID from its seed string.
var TraceRootID = trace.RootID
