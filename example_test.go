package eandroid_test

import (
	"fmt"
	"time"

	eandroid "repro"
)

// Example builds a device, runs the paper's component-hijack attack, and
// shows that the baseline hides the malware while E-Android exposes it.
func Example() {
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true})

	victim, err := dev.Packages.Install(
		eandroid.NewManifest("com.example.victim", "Victim").
			Activity("Main", true).MustBuild())
	if err != nil {
		panic(err)
	}
	if err := victim.SetWorkload("Main", eandroid.Workload{CPUActive: 0.4}); err != nil {
		panic(err)
	}
	mal, err := dev.Packages.Install(
		eandroid.NewManifest("com.fun.game", "FunGame").
			Activity("Main", true).MustBuild())
	if err != nil {
		panic(err)
	}

	if _, err := dev.Activities.UserStartApp("com.fun.game"); err != nil {
		panic(err)
	}
	if _, err := dev.StartActivity(mal.UID, "com.example.victim/Main"); err != nil {
		panic(err)
	}
	if err := dev.Run(10 * time.Second); err != nil {
		panic(err)
	}
	dev.Flush()

	fmt.Printf("baseline charges malware:   %.1f J\n", dev.Android.AppJ(mal.UID))
	fmt.Printf("e-android charges malware:  %.1f J collateral\n",
		dev.EAndroid.CollateralJ(mal.UID))
	// Output:
	// baseline charges malware:   0.0 J
	// e-android charges malware:  2.4 J collateral
}

// ExampleDevice_EAndroidView renders the revised battery interface after
// a cross-app service bind.
func ExampleDevice_EAndroidView() {
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true})
	victim, err := dev.Packages.Install(
		eandroid.NewManifest("com.v", "Victim").
			Activity("Main", true).
			Service("Work", true).
			MustBuild())
	if err != nil {
		panic(err)
	}
	if err := victim.SetWorkload("Work", eandroid.Workload{CPUActive: 0.5}); err != nil {
		panic(err)
	}
	mal, err := dev.Packages.Install(
		eandroid.NewManifest("com.m", "Mal").Activity("Main", true).MustBuild())
	if err != nil {
		panic(err)
	}
	if _, err := dev.BindService(mal.UID, "com.v/Work"); err != nil {
		panic(err)
	}
	if err := dev.Run(10 * time.Second); err != nil {
		panic(err)
	}
	for _, a := range dev.EAndroid.Attacks() {
		fmt.Println(a.Vector, dev.Packages.Label(a.Driving), "->", dev.Packages.Label(a.Driven))
	}
	// Output:
	// service-bind Mal -> Victim
}
