package eandroid_test

// One benchmark per table/figure in the paper's evaluation. Each bench
// regenerates the corresponding experiment end to end: workload
// generation, simulation, attribution and rendering. Run with
//
//	go test -bench=. -benchmem
//
// The absolute wall-clock numbers are properties of this machine; the
// paper-facing outputs (energy attributions, rates, orderings) are
// asserted by the test suite and recorded in EXPERIMENTS.md.

import (
	"testing"
	"time"

	"repro/internal/antutu"
	"repro/internal/experiments"
)

func requireNoErr(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig1MessageFilming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig1()
		requireNoErr(b, err)
	}
}

func BenchmarkFig2AppStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig2()
		requireNoErr(b, err)
	}
}

func BenchmarkFig3DrainCurves(b *testing.B) {
	// The full sweep simulates ~65 h of virtual time across five
	// configurations; a coarser step keeps each iteration fast while
	// exercising the identical code path.
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig3WithStep(10 * time.Minute)
		requireNoErr(b, err)
	}
}

func BenchmarkFig6MultiCollateral(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig6()
		requireNoErr(b, err)
	}
}

func BenchmarkFig7HybridChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig7()
		requireNoErr(b, err)
	}
}

func BenchmarkFig8Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig8()
		requireNoErr(b, err)
	}
}

func BenchmarkFig9aScene1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig9a()
		requireNoErr(b, err)
	}
}

func BenchmarkFig9bScene2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig9b()
		requireNoErr(b, err)
	}
}

func BenchmarkFig9cAttack3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig9c()
		requireNoErr(b, err)
	}
}

func BenchmarkFig9dAttack4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig9d()
		requireNoErr(b, err)
	}
}

func BenchmarkFig9eAttack5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig9e()
		requireNoErr(b, err)
	}
}

func BenchmarkFig9fAttack6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig9f()
		requireNoErr(b, err)
	}
}

func BenchmarkFig10MicroOps(b *testing.B) {
	// 10 reps per op per config inside each iteration; the standalone
	// cmd/benchsuite runs the paper's full 50.
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig10WithReps(10)
		requireNoErr(b, err)
	}
}

func BenchmarkFig11AnTuTu(b *testing.B) {
	cfg := antutu.Config{IntOps: 200_000, FloatOps: 200_000, MemBytes: 1 << 18, UXOps: 100}
	for i := 0; i < b.N; i++ {
		_, err := experiments.Fig11WithConfig(cfg)
		requireNoErr(b, err)
	}
}

// benchFleet runs the scaling workload (stealth attack + power-signature
// sampling over a 30-minute virtual window per device) at the given
// fleet size and worker count. The BenchmarkFleet{1,4,16,64} series
// records the size trajectory; the Workers pair records pool speedup
// (meaningful only on multicore hardware — per-device engines stay
// single-threaded, so parallelism is across devices).
func benchFleet(b *testing.B, devices, workers, shards int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fr, err := experiments.FleetBenchStudy(devices, workers, shards, 42)
		requireNoErr(b, err)
		if fr.Summary.Failed != 0 {
			b.Fatalf("%d devices failed", fr.Summary.Failed)
		}
	}
}

func BenchmarkFleet1(b *testing.B)  { benchFleet(b, 1, 0, 0) }
func BenchmarkFleet4(b *testing.B)  { benchFleet(b, 4, 0, 0) }
func BenchmarkFleet16(b *testing.B) { benchFleet(b, 16, 0, 0) }
func BenchmarkFleet64(b *testing.B) { benchFleet(b, 64, 0, 0) }

func BenchmarkFleet64Workers1(b *testing.B) { benchFleet(b, 64, 1, 1) }
func BenchmarkFleet64Workers8(b *testing.B) { benchFleet(b, 64, 8, 8) }
